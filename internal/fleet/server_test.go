package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads/sqldb"
)

// newTestPlane stands up a one-service fleet, runs a one-round wave,
// and returns the control plane handler over its live state.
func newTestPlane(t *testing.T) (http.Handler, *Manager, *trace.Tracer) {
	t.Helper()
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{})
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		Robustness: RobustnessConfig{MaxRounds: 1},
		SkipGate:   true, Tracer: tr, Metrics: reg,
		Timing: TimingConfig{ProfileDur: 0.0008, Warm: 0.0003, Window: 0.0004},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{Name: "svc", Workload: db, Input: "read_only", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0004)
	m.Optimize(m.Scan(ScanOptions{}), WaveOptions{})
	return NewControlPlane(m, reg, tr).Handler(), m, tr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestControlPlaneHealthz(t *testing.T) {
	h, _, _ := newTestPlane(t)
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestControlPlaneMetrics(t *testing.T) {
	h, _, _ := newTestPlane(t)
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE fleet_rounds_total counter",
		"fleet_services 1",
		"# TYPE core_stage_seconds summary",
		`core_stage_seconds{stage="profile",quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestControlPlaneServices(t *testing.T) {
	h, m, _ := newTestPlane(t)
	rec := get(t, h, "/services")
	if rec.Code != http.StatusOK {
		t.Fatalf("services status = %d", rec.Code)
	}
	var got []ServiceStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("services not JSON: %v\n%s", err, rec.Body.String())
	}
	want := m.Snapshot()
	if len(got) != len(want) || got[0].Name != "svc" || got[0].Version != want[0].Version {
		t.Errorf("services = %+v, want %+v", got, want)
	}
	// State round-trips by name in the raw document.
	if !strings.Contains(rec.Body.String(), `"state": "`+want[0].State.String()+`"`) {
		t.Errorf("state not named in %s", rec.Body.String())
	}
}

func TestControlPlaneTrace(t *testing.T) {
	h, _, tr := newTestPlane(t)

	rec := get(t, h, "/trace?service=svc")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace status = %d", rec.Code)
	}
	var tree []*trace.SpanNode
	if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tree) != 1 || tree[0].Name != "service" || len(tree[0].Children) == 0 {
		t.Errorf("trace tree = %s", rec.Body.String())
	}

	// Unknown service: empty tree, not an error.
	rec = get(t, h, "/trace?service=nope")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("unknown-service trace = %d %q", rec.Code, rec.Body.String())
	}

	// JSONL journal: one event per line, count matches the journal.
	rec = get(t, h, "/trace?format=jsonl")
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if want := tr.Journal().Len(); len(lines) != want {
		t.Errorf("jsonl has %d lines, journal %d", len(lines), want)
	}
	var ev trace.Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("jsonl line not JSON: %v", err)
	}
	if ev.Seq == 0 {
		t.Errorf("first event has no sequence number: %+v", ev)
	}

	rec = get(t, h, "/trace?format=yaml")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad format status = %d", rec.Code)
	}
}

func TestControlPlaneRejectsNonGet(t *testing.T) {
	h, _, _ := newTestPlane(t)
	for _, path := range []string{"/metrics", "/services", "/trace", "/healthz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader("x")))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s Allow = %q", path, allow)
		}
	}
}

func TestControlPlaneEmptySources(t *testing.T) {
	h := NewControlPlane(nil, nil, nil).Handler()
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("nil metrics = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/services"); rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("nil services = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/trace"); rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("nil trace = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("nil healthz = %d", rec.Code)
	}
}

// newDriftPlane stands up a drift-enabled fleet (streaming stores on)
// behind the control plane; the service runs briefly so the continuous
// sampler has streamed a few windows into its store.
func newDriftPlane(t *testing.T) (http.Handler, *Manager) {
	t.Helper()
	m, err := NewManager(driftConfig(telemetry.NewRegistry(), nil))
	if err != nil {
		t.Fatal(err)
	}
	addSQLService(t, m, "svc", nil)
	return NewControlPlane(m, nil, nil).Handler(), m
}

func TestControlPlaneProfileGet(t *testing.T) {
	h, _ := newDriftPlane(t)

	// All services: a JSON array with one entry.
	rec := get(t, h, "/profile")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /profile = %d", rec.Code)
	}
	var all []ProfileStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatalf("profile list not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(all) != 1 || all[0].Service != "svc" || all[0].Samples == 0 {
		t.Errorf("profile list = %+v, want one streaming svc entry", all)
	}

	// One service, edge list capped by top.
	rec = get(t, h, "/profile?service=svc&top=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /profile?service=svc = %d: %s", rec.Code, rec.Body.String())
	}
	var one ProfileStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatalf("profile doc not JSON: %v", err)
	}
	if one.Service != "svc" || len(one.TopEdges) > 1 {
		t.Errorf("profile doc = %+v, want svc with at most 1 edge", one)
	}

	if rec = get(t, h, "/profile?top=x"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad top = %d, want 400", rec.Code)
	}
	if rec = get(t, h, "/profile?service=nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown service = %d, want 404", rec.Code)
	}
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
	return rec
}

func TestControlPlaneProfilePost(t *testing.T) {
	h, m := newDriftPlane(t)
	before, err := m.ProfileStatus("svc", 0)
	if err != nil {
		t.Fatal(err)
	}

	push := `{"service": "svc", "samples": [
		{"at": 0.010, "records": [{"from": 256, "to": 512}]},
		{"at": 0.011, "records": [{"from": 256, "to": 512}, {"from": 768, "to": 1024}]}
	]}`
	rec := post(t, h, "/profile", push)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /profile = %d: %s", rec.Code, rec.Body.String())
	}
	var ack map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
		t.Fatalf("ack not JSON: %v", err)
	}
	if ack["samples"] != 2 || ack["records"] != 3 {
		t.Errorf("ack = %v, want 2 samples / 3 records", ack)
	}
	after, err := m.ProfileStatus("svc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Samples != before.Samples+2 || after.Records != before.Records+3 {
		t.Errorf("store did not absorb the push: %+v -> %+v", before.StoreStats, after.StoreStats)
	}

	if rec = post(t, h, "/profile", `{"samples": []}`); rec.Code != http.StatusBadRequest {
		t.Errorf("push without service = %d, want 400", rec.Code)
	}
	if rec = post(t, h, "/profile", `{not json`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed push = %d, want 400", rec.Code)
	}
	if rec = post(t, h, "/profile", `{"service": "nope", "samples": []}`); rec.Code != http.StatusNotFound {
		t.Errorf("push to unknown service = %d, want 404", rec.Code)
	}

	del := httptest.NewRecorder()
	h.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/profile", nil))
	if del.Code != http.StatusMethodNotAllowed || del.Header().Get("Allow") != "GET, POST" {
		t.Errorf("DELETE /profile = %d Allow=%q, want 405 with GET, POST", del.Code, del.Header().Get("Allow"))
	}
}

// TestControlPlaneProfileDriftDisabled: the fleet exists but runs
// without streaming stores — the well-formed requests conflict with the
// configuration, which is a 409, not a 404.
func TestControlPlaneProfileDriftDisabled(t *testing.T) {
	h, _, _ := newTestPlane(t)
	if rec := get(t, h, "/profile"); rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("driftless GET /profile = %d %q, want empty list", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/profile?service=svc"); rec.Code != http.StatusConflict {
		t.Errorf("driftless GET ?service = %d, want 409", rec.Code)
	}
	if rec := post(t, h, "/profile", `{"service": "svc", "samples": []}`); rec.Code != http.StatusConflict {
		t.Errorf("driftless POST = %d, want 409", rec.Code)
	}

	// No manager at all: list is empty, a push has nowhere to land.
	bare := NewControlPlane(nil, nil, nil).Handler()
	if rec := get(t, bare, "/profile"); rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("nil-manager GET /profile = %d %q", rec.Code, rec.Body.String())
	}
	if rec := post(t, bare, "/profile", `{"service": "svc", "samples": []}`); rec.Code != http.StatusNotFound {
		t.Errorf("nil-manager POST /profile = %d, want 404", rec.Code)
	}
}
