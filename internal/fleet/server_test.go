package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads/sqldb"
)

// newTestPlane stands up a one-service fleet, runs a one-round wave,
// and returns the control plane handler over its live state.
func newTestPlane(t *testing.T) (http.Handler, *Manager, *trace.Tracer) {
	t.Helper()
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{})
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		MaxRounds: 1, SkipGate: true, Tracer: tr, Metrics: reg,
		ProfileDur: 0.0008, Warm: 0.0003, Window: 0.0004,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{Name: "svc", Workload: db, Input: "read_only", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0004)
	m.Optimize(m.Scan(ScanOptions{}), WaveOptions{})
	return NewControlPlane(m, reg, tr).Handler(), m, tr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestControlPlaneHealthz(t *testing.T) {
	h, _, _ := newTestPlane(t)
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestControlPlaneMetrics(t *testing.T) {
	h, _, _ := newTestPlane(t)
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE fleet_rounds_total counter",
		"fleet_services 1",
		"# TYPE core_stage_seconds summary",
		`core_stage_seconds{stage="profile",quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestControlPlaneServices(t *testing.T) {
	h, m, _ := newTestPlane(t)
	rec := get(t, h, "/services")
	if rec.Code != http.StatusOK {
		t.Fatalf("services status = %d", rec.Code)
	}
	var got []ServiceStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("services not JSON: %v\n%s", err, rec.Body.String())
	}
	want := m.Snapshot()
	if len(got) != len(want) || got[0].Name != "svc" || got[0].Version != want[0].Version {
		t.Errorf("services = %+v, want %+v", got, want)
	}
	// State round-trips by name in the raw document.
	if !strings.Contains(rec.Body.String(), `"state": "`+want[0].State.String()+`"`) {
		t.Errorf("state not named in %s", rec.Body.String())
	}
}

func TestControlPlaneTrace(t *testing.T) {
	h, _, tr := newTestPlane(t)

	rec := get(t, h, "/trace?service=svc")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace status = %d", rec.Code)
	}
	var tree []*trace.SpanNode
	if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tree) != 1 || tree[0].Name != "service" || len(tree[0].Children) == 0 {
		t.Errorf("trace tree = %s", rec.Body.String())
	}

	// Unknown service: empty tree, not an error.
	rec = get(t, h, "/trace?service=nope")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("unknown-service trace = %d %q", rec.Code, rec.Body.String())
	}

	// JSONL journal: one event per line, count matches the journal.
	rec = get(t, h, "/trace?format=jsonl")
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if want := tr.Journal().Len(); len(lines) != want {
		t.Errorf("jsonl has %d lines, journal %d", len(lines), want)
	}
	var ev trace.Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("jsonl line not JSON: %v", err)
	}
	if ev.Seq == 0 {
		t.Errorf("first event has no sequence number: %+v", ev)
	}

	rec = get(t, h, "/trace?format=yaml")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad format status = %d", rec.Code)
	}
}

func TestControlPlaneRejectsNonGet(t *testing.T) {
	h, _, _ := newTestPlane(t)
	for _, path := range []string{"/metrics", "/services", "/trace", "/healthz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader("x")))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s Allow = %q", path, allow)
		}
	}
}

func TestControlPlaneEmptySources(t *testing.T) {
	h := NewControlPlane(nil, nil, nil).Handler()
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("nil metrics = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/services"); rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("nil services = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/trace"); rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("nil trace = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("nil healthz = %d", rec.Code)
	}
}
