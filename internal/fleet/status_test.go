package fleet

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads/sqldb"
)

var errTransient = errors.New("transient fault")

// TestSnapshotAndTraceAfterWave runs a small two-service wave with a
// tracer attached and asserts the snapshot records the outcome, that it
// JSON-encodes with named states, and that every service got a root span
// with transition events and round/stage spans beneath it.
func TestSnapshotAndTraceAfterWave(t *testing.T) {
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{})
	m, err := NewManager(Config{
		Robustness: RobustnessConfig{MaxRounds: 1},
		SkipGate:   true, Tracer: tr,
		Metrics: telemetry.NewRegistry(),
		Timing:  TimingConfig{ProfileDur: 0.0008, Warm: 0.0003, Window: 0.0004},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"svc-b", "svc-a"} {
		s, err := m.AddService(ServicePlan{Name: name, Workload: db, Input: "read_only", Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		s.Proc.RunFor(0.0004)
	}

	pre := m.Snapshot()
	if len(pre) != 2 || pre[0].Name != "svc-a" || pre[1].Name != "svc-b" {
		t.Fatalf("pre-wave snapshot = %+v", pre)
	}
	for _, st := range pre {
		if st.State != Idle || st.Speedup != 1 || st.Version != 0 || st.AddedAt.IsZero() {
			t.Errorf("pre-wave status %s = %+v", st.Name, st)
		}
	}

	m.Optimize(m.Scan(ScanOptions{}), WaveOptions{})

	for _, st := range m.Snapshot() {
		if !st.State.Terminal() {
			t.Errorf("%s ended non-terminal: %s", st.Name, st.State)
		}
		if len(st.Rounds) == 0 {
			t.Errorf("%s recorded no rounds", st.Name)
			continue
		}
		if st.Version != st.Rounds[len(st.Rounds)-1].Version {
			t.Errorf("%s version %d != last round %d", st.Name, st.Version, st.Rounds[len(st.Rounds)-1].Version)
		}
		if !st.UpdatedAt.After(st.AddedAt) {
			t.Errorf("%s updated_at not advanced: %v vs %v", st.Name, st.UpdatedAt, st.AddedAt)
		}

		// JSON shape: named state, stable keys.
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var dec map[string]any
		if err := json.Unmarshal(b, &dec); err != nil {
			t.Fatal(err)
		}
		if dec["state"] != st.State.String() {
			t.Errorf("state encoded as %v, want %q", dec["state"], st.State)
		}
		for _, key := range []string{"name", "version", "speedup", "rollbacks", "added_at", "updated_at"} {
			if _, ok := dec[key]; !ok {
				t.Errorf("snapshot JSON missing %q: %s", key, b)
			}
		}

		// Per-service span tree: root → round → stages.
		roots := tr.Tree(st.Name)
		if len(roots) != 1 || roots[0].Name != "service" {
			t.Fatalf("%s: roots = %+v", st.Name, roots)
		}
		if roots[0].Open {
			t.Errorf("%s: root span still open after terminal state", st.Name)
		}
		var round *trace.SpanNode
		for _, ch := range roots[0].Children {
			if ch.Name == "round" {
				round = ch
			}
		}
		if round == nil {
			t.Fatalf("%s: no round span under root", st.Name)
		}
		stageNames := map[string]bool{}
		for _, ch := range round.Children {
			stageNames[ch.Name] = true
		}
		for _, want := range []string{"profile", "perf2bolt", "bolt", "replace", "measure"} {
			if !stageNames[want] {
				t.Errorf("%s: round missing %q stage span (have %v)", st.Name, want, stageNames)
			}
		}

		// Transition events follow the lifecycle in order.
		var seq []string
		for _, e := range tr.Journal().ByService(st.Name) {
			if e.Type == trace.EvTransition {
				v, _ := e.Attrs.Get("to")
				seq = append(seq, v.(string))
			}
		}
		if len(seq) < 5 || seq[0] != "Profiling" || !State.Terminal(stateByName(t, seq[len(seq)-1])) {
			t.Errorf("%s: transition sequence %v", st.Name, seq)
		}
	}

	// Report is a pure view over Snapshot.
	rep := m.Report()
	snap := m.Snapshot()
	if len(rep.Services) != len(snap) {
		t.Fatalf("report has %d services, snapshot %d", len(rep.Services), len(snap))
	}
	for i, sr := range rep.Services {
		if sr.Name != snap[i].Name || sr.State != snap[i].State ||
			sr.FinalSpeedup != snap[i].Speedup || sr.Err != snap[i].LastErr {
			t.Errorf("report[%d] diverges from snapshot: %+v vs %+v", i, sr, snap[i])
		}
	}
}

func stateByName(t *testing.T, name string) State {
	t.Helper()
	for s := Idle; s <= Quarantined; s++ {
		if s.String() == name {
			return s
		}
	}
	t.Fatalf("unknown state %q", name)
	return Idle
}

// TestRetryAndBackoffEvents injects a transient profiling fault and
// asserts the retry and backoff journal events carry the stage and wait.
func TestRetryAndBackoffEvents(t *testing.T) {
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{})
	fails := 0
	m, err := NewManager(Config{
		Robustness: RobustnessConfig{MaxRounds: 1, MaxRetries: 2},
		SkipGate:   true, Tracer: tr,
		Timing: TimingConfig{ProfileDur: 0.0008, Warm: 0.0003, Window: 0.0004},
		Sleep:  func(time.Duration) {},
		FaultHook: func(s *Service, stage State) error {
			if stage == Profiling && fails < 1 {
				fails++
				return errTransient
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{Name: "flaky", Workload: db, Input: "read_only", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0004)
	m.Optimize(m.Scan(ScanOptions{}), WaveOptions{})

	j := tr.Journal()
	faults := j.ByType(trace.EvFaultInjected)
	retries := j.ByType(trace.EvRetry)
	backoffs := j.ByType(trace.EvBackoff)
	if len(faults) != 1 || len(retries) != 1 || len(backoffs) != 1 {
		t.Fatalf("events: faults=%d retries=%d backoffs=%d, want 1/1/1",
			len(faults), len(retries), len(backoffs))
	}
	if v, _ := retries[0].Attrs.Get("stage"); v != "Profiling" {
		t.Errorf("retry stage = %v", v)
	}
	if sec, ok := backoffs[0].Attrs.Get("seconds"); !ok || sec.(float64) <= 0 {
		t.Errorf("backoff seconds = %v", sec)
	}
	if retries[0].Service != "flaky" {
		t.Errorf("retry event service = %q", retries[0].Service)
	}
}
