// Package fleet is the data-center deployment layer §V sketches: systems
// like Google-Wide Profiling continuously profile every service in the
// fleet, and OCOLOS plugs in as the actuator — the fleet manager scans
// TopDown counters across services, ranks the front-end-bound ones, and
// optimizes only where layout work will pay off (Figure 9's criterion),
// with the option of reverting services that did not improve.
package fleet

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/workloads/wl"
)

// Service is one managed process.
type Service struct {
	Name   string
	Input  string
	Proc   *proc.Process
	Driver *wl.Driver
	Ctl    *core.Controller

	baseline float64 // steady-state throughput before optimization
}

// NewService loads a workload instance under a fresh controller.
func NewService(name string, w *wl.Workload, input string, threads int, opts core.Options) (*Service, error) {
	d, err := w.NewDriver(input, threads)
	if err != nil {
		return nil, err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return nil, err
	}
	ctl, err := core.New(p, w.Binary, opts)
	if err != nil {
		return nil, err
	}
	return &Service{Name: name, Input: input, Proc: p, Driver: d, Ctl: ctl}, nil
}

// Throughput measures the service over a simulated window.
func (s *Service) Throughput(window float64) float64 {
	return wl.Measure(s.Proc, s.Driver, window)
}

// Manager owns the fleet.
type Manager struct {
	Services []*Service
}

// Scan result for one service.
type ScanResult struct {
	Service  *Service
	TopDown  cpu.TopDown
	Optimize bool
}

// Scan runs the first-stage TopDown check on every service (the
// DMon/GWP-style fleet profiling pass) and ranks candidates by front-end
// share, the feature Figure 9 shows predicts benefit.
func (m *Manager) Scan(window float64) []ScanResult {
	out := make([]ScanResult, 0, len(m.Services))
	for _, s := range m.Services {
		go1, td := s.Ctl.ShouldOptimize(window)
		out = append(out, ScanResult{Service: s, TopDown: td, Optimize: go1})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].TopDown.FrontEnd > out[j].TopDown.FrontEnd
	})
	return out
}

// OptimizeCandidates performs one OCOLOS round on every service the scan
// selected, and returns per-service speedups. Services whose measured
// speedup falls below revertBelow are reverted to C0 (§VI-C4's safety
// net); pass 0 to never revert.
func (m *Manager) OptimizeCandidates(scan []ScanResult, profileDur, warm, window float64, revertBelow float64) (map[string]float64, error) {
	speedups := make(map[string]float64, len(scan))
	for _, r := range scan {
		s := r.Service
		s.Proc.RunFor(warm)
		s.baseline = s.Throughput(window)
		if !r.Optimize {
			speedups[s.Name] = 1.0
			continue
		}
		if _, _, err := s.Ctl.RunOnce(profileDur); err != nil {
			return nil, fmt.Errorf("fleet: optimizing %s: %w", s.Name, err)
		}
		s.Proc.RunFor(warm)
		after := s.Throughput(window)
		speedup := after / s.baseline
		if revertBelow > 0 && speedup < revertBelow {
			if _, err := s.Ctl.Revert(); err != nil {
				return nil, fmt.Errorf("fleet: reverting %s: %w", s.Name, err)
			}
			s.Proc.RunFor(warm)
			after = s.Throughput(window)
			speedup = after / s.baseline
		}
		if err := s.Proc.Fault(); err != nil {
			return nil, fmt.Errorf("fleet: %s faulted: %w", s.Name, err)
		}
		speedups[s.Name] = speedup
	}
	return speedups, nil
}
