// Package fleet is the data-center deployment layer §V sketches: systems
// like Google-Wide Profiling continuously profile every service in the
// fleet, and OCOLOS plugs in as the actuator. The Manager scans TopDown
// counters across services, ranks the front-end-bound ones (Figure 9's
// criterion), and drives each selected service through an explicit
// lifecycle —
//
//	Idle → Profiling → Building → Replacing → Measuring
//	     → (next round | Steady | Reverted | Failed)
//
// — on a bounded worker pool, so many services are optimized
// concurrently while a global semaphore staggers their stop-the-world
// replacement pauses (§IV-D's operational guidance). Each service loops
// C_i → C_{i+1} (continuous optimization with dead-code GC, §IV-C) until
// its round-over-round gain converges, its regression guard trips a
// revert to C0 (§VI-C4), or a persistent fault parks it in a terminal
// state. Transient stage errors are retried with exponential backoff,
// and everything the fleet does is published into a telemetry.Registry.
//
// At fleet scale the manager is sharded: services hash into
// Config.Shards independent lock domains with per-shard work queues, so
// Snapshot, Scan, and the HTTP control plane read one shard at a time
// without stalling in-flight replacements, and the shared worker budget
// drains every shard's queue concurrently. All selected services share
// one content-addressed layout.Cache — identical binaries with
// statistically identical profiles reuse a single BOLT run per round
// ("optimize once, deploy everywhere", §V) — and trace-journal /
// telemetry writes are batched off the wave hot path by a bounded
// flusher.
package fleet

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/layout"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads/wl"
)

// TimingConfig groups the simulated-duration knobs of the lifecycle.
type TimingConfig struct {
	// ProfileDur is the simulated LBR profiling window per round
	// (default 4 ms). With drift streaming enabled it is also the
	// trailing store window a round's profile is served from.
	ProfileDur float64
	// Warm is the simulated settle time before each measurement
	// (default 2 ms).
	Warm float64
	// Window is the simulated throughput-measurement window, also used
	// by Scan's TopDown pass (default 3 ms).
	Window float64
}

// RobustnessConfig groups the convergence, regression-guard, retry, and
// quarantine knobs.
type RobustnessConfig struct {
	// MaxRounds caps optimization rounds per service per wave (default 2).
	MaxRounds int
	// ConvergeGain stops a service's loop once a round improves
	// throughput over the previous round by less than this fraction
	// (default 0.02, i.e. < 1.02x round-over-round gain → Steady).
	// Negative means never converge early: always run MaxRounds.
	ConvergeGain float64
	// RevertBelow reverts a service to C0 when its cumulative speedup
	// over baseline falls below this factor (0 = never revert on
	// regression; §VI-C4's safety net).
	RevertBelow float64
	// MaxRetries is how many times a failed lifecycle stage is retried
	// before the service gives up and reverts/fails (default 2).
	MaxRetries int
	// QuarantineAfter is the replace circuit-breaker threshold: after
	// this many consecutive transactional rollbacks (Replace calls that
	// failed and were undone) the service is pinned at its last good
	// version in the Quarantined state instead of being reverted or
	// failed. Default MaxRetries+1, i.e. one exhausted Replacing stage
	// trips the breaker; Validate rejects explicit values at or below
	// MaxRetries (the breaker would trip before a single stage's retry
	// budget could run).
	QuarantineAfter int
	// RetryBackoff is the host-time backoff before the first retry; it
	// doubles per attempt (default 5 ms).
	RetryBackoff time.Duration
}

// CacheConfig groups the fleet-wide layout-cache knobs.
type CacheConfig struct {
	// Layout is the fleet-wide content-addressed cache of BOLT layouts
	// shared by every controller the manager creates; identical binaries
	// with statistically identical profiles reuse one BOLT run. Nil
	// means the manager builds a layout.Memory wired into Metrics; set
	// Disable to run without any cache.
	Layout layout.Cache
	// Disable turns the fleet layout cache off entirely: every service
	// pays its own perf2bolt+BOLT pipeline (ablation baseline).
	// Supplying Layout and Disable together fails Validate.
	Disable bool
}

// DriftConfig groups the streaming-ingest and drift re-optimization
// knobs. When Enabled, every added service gets a bounded profile.Store
// fed by a continuous perf.Streamer, its controller serves optimization
// rounds from the store's trailing window (AttachProfileSource), and
// drift scans (Scan with ScanOptions.Drift) may send Steady services
// back around the lifecycle when the live profile has diverged from the
// one their layout was built from.
type DriftConfig struct {
	Enabled bool
	// Policy is the re-optimization hysteresis (divergence threshold,
	// dwell, cooldown, per-shard budget); zero fields take the
	// profile.ReoptPolicy defaults.
	Policy profile.ReoptPolicy
	// Stream tunes the continuous sampler attached to each service
	// (period, overhead); zero fields take the perf defaults.
	Stream perf.RecorderOptions
	// StoreCapacity bounds each service's sample ring (default 8192).
	StoreCapacity int
	// StoreHalfLife is the decay half-life of each store's rolling
	// edge-weight view (default 10 ms simulated).
	StoreHalfLife float64
}

// Config carries the manager's named knobs with validated defaults,
// grouped by concern (timing, robustness, caching, drift) now that the
// flat field list outgrew a single struct. FlatConfig converts the old
// shape for one release.
type Config struct {
	// Workers bounds how many services run their lifecycle concurrently
	// (default 4). The budget is global: it is shared across all shard
	// queues, never multiplied by Shards.
	Workers int
	// MaxPauses bounds how many services may sit in a stop-the-world
	// replacement (or revert) pause at the same instant, staggering
	// pauses across the fleet (default 1; see docs/fleet.md).
	MaxPauses int
	// Shards is the number of independent lock domains the service
	// table is split into (default 4). Services hash to a shard by name;
	// readers (Snapshot, Scan, the control plane) and the wave's
	// dispatchers each touch one shard at a time, so a thousand-service
	// fleet never serializes on a single manager mutex.
	Shards int

	// Timing groups the simulated profiling/settle/measure durations.
	Timing TimingConfig
	// Robustness groups convergence, regression, retry, and quarantine.
	Robustness RobustnessConfig
	// Cache groups the fleet-wide layout-cache knobs.
	Cache CacheConfig
	// Drift groups streaming profile ingestion and drift-triggered
	// re-optimization.
	Drift DriftConfig

	// SkipGate optimizes every service regardless of the TopDown scan
	// verdict (tests and force-rollouts).
	SkipGate bool

	// FlushBuffer bounds the async flusher that batches trace-journal
	// and telemetry writes off the wave hot path (default 256 pending
	// writes; the wave blocks, bounded, when it outruns the drain).
	// Negative disables batching: writes happen inline, as they also do
	// under an active replay session.
	FlushBuffer int

	// Metrics receives the fleet's counters, gauges, and histograms; it
	// is also wired into every controller the manager creates. Nil means
	// metrics are discarded.
	Metrics *telemetry.Registry

	// Tracer receives one root span per service plus every lifecycle
	// event (transitions, retries, backoffs, quarantine trips) and the
	// per-round stage spans of every controller the manager creates. Nil
	// means tracing is discarded.
	Tracer *trace.Tracer

	// FaultHook, when non-nil, runs before every stage attempt; a
	// non-nil return is treated as that stage failing. Tests use it to
	// inject faults at each lifecycle stage. The stage is Profiling,
	// Building, Replacing, or Measuring for forward work, and Reverted
	// for the revert action itself.
	FaultHook func(s *Service, stage State) error

	// Sleep overrides how backoff waits are performed; nil means
	// Clock.Sleep. Tests inject a recorder to observe backoff without
	// waiting.
	Sleep func(time.Duration)

	// Clock supplies every wall-clock read and backoff sleep the fleet
	// performs (service added/updated timestamps, pause-wait timing);
	// nil means the host's real clock. The record/replay layer swaps in
	// a journaling clock so timestamps replay deterministically.
	Clock replay.Clock

	// JitterSeed seeds the retry-backoff jitter source (default 1), so a
	// fleet's backoff schedule is a pure function of its config.
	JitterSeed int64
	// Jitter overrides the seeded jitter source with a custom [0,1)
	// draw; tests pin it to observe exact schedules.
	Jitter func() float64

	// Replay, when active, records or replays the wave's nondeterminism:
	// clock reads, sleeps, jitter draws, stage-fault decisions, and —
	// through each service's controller — perf deadlines, tracee fault
	// decisions, and replace checkpoints. An active session serializes
	// the wave (Workers and MaxPauses are forced to 1): replay needs a
	// deterministic decision order, the same limitation rr has.
	Replay *replay.Session
}

// Validate rejects configurations that are internally contradictory —
// not merely unset (zero fields default) but nonsensical in
// combination. It runs on the explicit values, before defaulting.
func (c Config) Validate() error {
	if c.Workers < 0 || c.MaxPauses < 0 || c.Shards < 0 ||
		c.Robustness.MaxRounds < 0 || c.Robustness.MaxRetries < 0 ||
		c.Robustness.QuarantineAfter < 0 || c.Drift.StoreCapacity < 0 {
		return fmt.Errorf("fleet: negative count in config: %+v", c)
	}
	if c.Timing.ProfileDur < 0 || c.Timing.Warm < 0 || c.Timing.Window < 0 ||
		c.Robustness.RevertBelow < 0 || c.Robustness.RetryBackoff < 0 ||
		c.Drift.StoreHalfLife < 0 {
		return fmt.Errorf("fleet: negative duration/threshold in config: %+v", c)
	}
	if c.Cache.Disable && c.Cache.Layout != nil {
		return fmt.Errorf("fleet: Cache.Disable set but a Cache.Layout was supplied — pick one")
	}
	if q := c.Robustness.QuarantineAfter; q > 0 {
		r := c.Robustness.MaxRetries
		if r == 0 {
			r = 2 // the MaxRetries default
		}
		// The quarantine breaker counts consecutive replace rollbacks, and
		// one Replacing stage already rolls back up to 1+MaxRetries times:
		// a threshold inside a single stage's retry budget is dead config —
		// the breaker trips on the first exhausted stage regardless, so the
		// number expresses an intent the retry policy contradicts.
		if q <= r {
			return fmt.Errorf("fleet: QuarantineAfter=%d trips inside one stage's retry budget (MaxRetries=%d); use at least MaxRetries+1 or 0 for the default", q, r)
		}
	}
	if d := c.Drift; d.Enabled {
		if d.Policy.MinDivergence < 0 || d.Policy.MinDivergence > 1 {
			return fmt.Errorf("fleet: Drift.Policy.MinDivergence=%v outside [0,1] (total-variation distance)", d.Policy.MinDivergence)
		}
		if d.Policy.MinDwell < 0 || d.Policy.Cooldown < 0 || d.Policy.Window < 0 {
			return fmt.Errorf("fleet: negative drift hysteresis in config: %+v", d.Policy)
		}
	}
	return nil
}

// withDefaults validates the config and fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if err := c.Validate(); err != nil {
		return c, err
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.MaxPauses == 0 {
		c.MaxPauses = 1
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.FlushBuffer == 0 {
		c.FlushBuffer = 256
	}
	if c.Timing.ProfileDur == 0 {
		c.Timing.ProfileDur = 0.004
	}
	if c.Timing.Warm == 0 {
		c.Timing.Warm = 0.002
	}
	if c.Timing.Window == 0 {
		c.Timing.Window = 0.003
	}
	if c.Robustness.MaxRounds == 0 {
		c.Robustness.MaxRounds = 2
	}
	if c.Robustness.ConvergeGain == 0 {
		c.Robustness.ConvergeGain = 0.02
	}
	if c.Robustness.MaxRetries == 0 {
		c.Robustness.MaxRetries = 2
	}
	if c.Robustness.QuarantineAfter == 0 {
		c.Robustness.QuarantineAfter = c.Robustness.MaxRetries + 1
	}
	if c.Robustness.RetryBackoff == 0 {
		c.Robustness.RetryBackoff = 5 * time.Millisecond
	}
	if c.Drift.Enabled {
		c.Drift.Policy = c.Drift.Policy.WithDefaults()
		if c.Drift.Policy.Window == 0 {
			c.Drift.Policy.Window = c.Timing.ProfileDur
		}
	}
	if c.Clock == nil {
		c.Clock = replay.Wall{}
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.Replay.Active() {
		// Recording is only meaningful over a deterministic decision order;
		// a one-worker, one-pause wave is exactly that (Scan order is
		// already deterministic).
		c.Workers = 1
		c.MaxPauses = 1
	}
	return c, nil
}

// FlatConfig is the pre-nesting Config shape, kept one release so
// existing construction sites migrate on their own schedule. Convert
// with Config(); new code should build the nested Config directly.
type FlatConfig struct {
	Workers         int
	MaxPauses       int
	Shards          int
	ProfileDur      float64
	Warm            float64
	Window          float64
	MaxRounds       int
	ConvergeGain    float64
	RevertBelow     float64
	MaxRetries      int
	QuarantineAfter int
	RetryBackoff    time.Duration
	SkipGate        bool
	LayoutCache     layout.Cache
	NoLayoutCache   bool
	FlushBuffer     int
	Metrics         *telemetry.Registry
	Tracer          *trace.Tracer
	FaultHook       func(s *Service, stage State) error
	Sleep           func(time.Duration)
	Clock           replay.Clock
	JitterSeed      int64
	Jitter          func() float64
	Replay          *replay.Session
}

// Config regroups the flat fields into the nested shape.
func (f FlatConfig) Config() Config {
	return Config{
		Workers:   f.Workers,
		MaxPauses: f.MaxPauses,
		Shards:    f.Shards,
		Timing: TimingConfig{
			ProfileDur: f.ProfileDur,
			Warm:       f.Warm,
			Window:     f.Window,
		},
		Robustness: RobustnessConfig{
			MaxRounds:       f.MaxRounds,
			ConvergeGain:    f.ConvergeGain,
			RevertBelow:     f.RevertBelow,
			MaxRetries:      f.MaxRetries,
			QuarantineAfter: f.QuarantineAfter,
			RetryBackoff:    f.RetryBackoff,
		},
		Cache:       CacheConfig{Layout: f.LayoutCache, Disable: f.NoLayoutCache},
		SkipGate:    f.SkipGate,
		FlushBuffer: f.FlushBuffer,
		Metrics:     f.Metrics,
		Tracer:      f.Tracer,
		FaultHook:   f.FaultHook,
		Sleep:       f.Sleep,
		Clock:       f.Clock,
		JitterSeed:  f.JitterSeed,
		Jitter:      f.Jitter,
		Replay:      f.Replay,
	}
}

// backoffJitterFrac scales the jitter added to each retry backoff:
// sleep = backoff * (1 + frac*jitter), jitter drawn from [0,1).
const backoffJitterFrac = 0.5

// seededJitter returns a locked, seeded [0,1) source.
func seededJitter(seed int64) func() float64 {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(seed))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
}

// sleepOverride substitutes the Sleep behavior of a Clock (Config.Sleep
// compatibility: tests record backoff waits without waiting).
type sleepOverride struct {
	replay.Clock
	sleep func(time.Duration)
}

func (c sleepOverride) Sleep(d time.Duration) { c.sleep(d) }

// ServicePlan names everything needed to stand up one managed service,
// replacing NewService's positional (name, w, input, threads, opts)
// signature.
type ServicePlan struct {
	Name     string
	Workload *wl.Workload
	Input    string
	// Threads is the worker-thread count; 0 means the workload default.
	Threads int
	// Core configures the service's controller. The manager fills in
	// AllowReBolt (multi-round fleets need it) and its Metrics registry.
	Core core.Options
	// Clock supplies the service's record timestamps (added/updated);
	// nil means the host clock. The manager injects its own (possibly
	// record/replay) clock.
	Clock replay.Clock
}

// Service is one managed process with its lifecycle record.
type Service struct {
	Name   string
	Plan   ServicePlan
	Proc   *proc.Process
	Driver *wl.Driver
	Ctl    *core.Controller

	mu        sync.Mutex
	state     State
	rounds    []RoundResult
	retries   int
	rollbacks int // consecutive transactional replace rollbacks
	scanned   bool
	selected  bool
	topdown   cpu.TopDown
	baseline  wl.WindowStats
	lastErr   error
	root      *trace.Span  // per-service trace root, nil without a tracer
	emit      func(func()) // wave flusher hook; nil = inline writes
	clock     replay.Clock
	addedAt   time.Time
	updatedAt time.Time

	// Streaming-ingest state, wired by AddService when Config.Drift is
	// enabled: the bounded sample store the controller's profile windows
	// are served from, the always-attached sampler feeding it, the drift
	// tracker holding the layout's build-profile baseline, and how many
	// times drift sent the service back around the loop.
	store    *profile.Store
	streamer *perf.Streamer
	tracker  *profile.Tracker
	reopts   int
}

// NewService loads a workload instance under a fresh controller.
func NewService(plan ServicePlan) (*Service, error) {
	if plan.Workload == nil {
		return nil, fmt.Errorf("fleet: service %q has no workload", plan.Name)
	}
	if plan.Name == "" {
		return nil, fmt.Errorf("fleet: service for workload %s has no name", plan.Workload.Name)
	}
	if plan.Threads <= 0 {
		plan.Threads = plan.Workload.Threads
	}
	d, err := plan.Workload.NewDriver(plan.Input, plan.Threads)
	if err != nil {
		return nil, err
	}
	p, err := proc.Load(plan.Workload.Binary, proc.Options{Threads: plan.Threads, Handler: d})
	if err != nil {
		return nil, err
	}
	ctl, err := core.New(p, plan.Workload.Binary, plan.Core)
	if err != nil {
		return nil, err
	}
	if plan.Clock == nil {
		plan.Clock = replay.Wall{}
	}
	now := plan.Clock.Now()
	return &Service{Name: plan.Name, Plan: plan, Proc: p, Driver: d, Ctl: ctl,
		state: Idle, clock: plan.Clock, addedAt: now, updatedAt: now}, nil
}

// now reads the service clock, falling back to the wall clock for
// hand-built Service literals (tests) that never went through
// NewService.
func (s *Service) now() time.Time {
	if s.clock == nil {
		return time.Now()
	}
	return s.clock.Now()
}

// rootSpan returns the service's trace root span (nil-safe sink when no
// tracer is configured).
func (s *Service) rootSpan() *trace.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root
}

// setRoot installs the service's root span and points the controller's
// stage spans under it.
func (s *Service) setRoot(sp *trace.Span) {
	s.mu.Lock()
	s.root = sp
	s.mu.Unlock()
	s.Ctl.SetTraceRoot(sp)
}

// setEmit installs (or clears, with nil) the wave's async write hook:
// while set, the service's lifecycle events route through the wave
// flusher instead of being journaled inline.
func (s *Service) setEmit(fn func(func())) {
	s.mu.Lock()
	s.emit = fn
	s.mu.Unlock()
}

// Measure measures the service's current throughput over the scan
// window (opts.MinThroughput is ignored: Measure reports, Scan gates).
func (s *Service) Measure(opts ScanOptions) float64 {
	return wl.Measure(s.Proc, s.Driver, opts.Window)
}

// ProfileStore returns the service's streaming sample store (nil when
// drift ingestion is disabled).
func (s *Service) ProfileStore() *profile.Store { return s.store }

// Reopts returns how many times drift detection sent the service back
// around the optimization loop from Steady.
func (s *Service) Reopts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reopts
}

// State returns the service's current lifecycle state.
func (s *Service) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Err returns the most recent stage error recorded for the service (nil
// if it never failed).
func (s *Service) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Rollbacks returns the service's consecutive transactional replace
// rollbacks (reset to zero by every committed replacement).
func (s *Service) Rollbacks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rollbacks
}

// Rounds returns a copy of the completed optimization rounds.
func (s *Service) Rounds() []RoundResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RoundResult(nil), s.rounds...)
}

// mgrShard is one lock domain of the service table. Every shard owns a
// disjoint, name-hashed subset of the fleet; readers and wave
// dispatchers lock one shard at a time, so contention on any shard
// (say, a snapshot racing a thousand-service wave) never stalls the
// other shards.
type mgrShard struct {
	mu       sync.Mutex
	services []*Service
}

// snapshot copies the shard's service list under its own lock.
func (sh *mgrShard) snapshot() []*Service {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]*Service(nil), sh.services...)
}

// Manager owns the fleet: the shared config, the pause-stagger
// semaphore, the sharded service table, and the fleet-wide layout
// cache.
type Manager struct {
	cfg      Config
	pauseSem chan struct{}
	clock    replay.Clock   // cfg.Clock, session-wrapped, Sleep-overridden
	jitter   func() float64 // backoff jitter source, session-wrapped
	cache    layout.Cache   // fleet-wide layout cache, nil when disabled

	shards []*mgrShard

	// fl is the wave's write flusher. It is installed before a wave's
	// workers start and cleared after they join, so worker goroutines
	// read it race-free; outside a wave it is nil and writes are inline.
	fl *flusher

	pmu       sync.Mutex // pause accounting, separate from shard locks
	inPause   int
	peakPause int
}

// NewManager validates the config and returns an empty manager. The base
// metric families are registered eagerly so a scrape taken before (or
// without) any optimization wave still exposes every fleet metric name.
func NewManager(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	registerBaseMetrics(cfg.Metrics)
	clock := cfg.Clock
	if cfg.Sleep != nil {
		clock = sleepOverride{Clock: clock, sleep: cfg.Sleep}
	}
	jitter := cfg.Jitter
	if jitter == nil {
		jitter = seededJitter(cfg.JitterSeed)
	}
	cache := cfg.Cache.Layout
	if cache == nil && !cfg.Cache.Disable {
		cache = layout.NewMemory(0, cfg.Metrics)
	}
	shards := make([]*mgrShard, cfg.Shards)
	for i := range shards {
		shards[i] = &mgrShard{}
	}
	return &Manager{
		cfg:      cfg,
		pauseSem: make(chan struct{}, cfg.MaxPauses),
		clock:    cfg.Replay.Clock(clock),
		jitter:   cfg.Replay.Jitter(jitter),
		cache:    cache,
		shards:   shards,
	}, nil
}

// shardIndex hashes a service name to its lock domain.
func (m *Manager) shardIndex(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(m.shards)))
}

// LayoutCache returns the fleet-wide layout cache (nil when disabled).
func (m *Manager) LayoutCache() layout.Cache { return m.cache }

// CacheStats snapshots the layout-cache counters; ok is false when the
// cache is disabled.
func (m *Manager) CacheStats() (stats layout.Stats, ok bool) {
	if m.cache == nil {
		return layout.Stats{}, false
	}
	return m.cache.Stats(), true
}

// registerBaseMetrics creates the fleet's metric families at their zero
// values (the registry is a nil-safe sink when metrics are discarded).
func registerBaseMetrics(r *telemetry.Registry) {
	r.Counter("fleet_rounds_total")
	r.Counter("fleet_steady_total")
	r.Counter("fleet_reverts_total")
	r.Counter("fleet_failures_total")
	r.Counter("fleet_quarantines_total")
	r.Gauge("fleet_services")
	r.Gauge("fleet_selected")
	r.Gauge("fleet_quarantined")
	r.Gauge("fleet_pauses_peak")
	r.CounterVec("fleet_stage_errors_total", "stage")
	r.CounterVec("fleet_retries_total", "stage")
	r.Histogram("fleet_speedup")
	r.Histogram("fleet_pause_seconds")
	r.Histogram("fleet_pause_wait_seconds")
}

// Config returns the manager's effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// AddService builds a service from the plan, wires it into the
// manager's metrics registry and multi-round bolt settings, and adopts
// it.
func (m *Manager) AddService(plan ServicePlan) (*Service, error) {
	if plan.Core.Metrics == nil {
		plan.Core.Metrics = m.cfg.Metrics
	}
	if plan.Core.Tracer == nil {
		plan.Core.Tracer = m.cfg.Tracer
	}
	if plan.Core.Service == "" {
		plan.Core.Service = plan.Name
	}
	if plan.Core.Replay == nil {
		plan.Core.Replay = m.cfg.Replay
	}
	if plan.Clock == nil {
		plan.Clock = m.clock
	}
	if plan.Core.LayoutCache == nil {
		plan.Core.LayoutCache = m.cache
	}
	if m.cfg.Robustness.MaxRounds > 1 || m.cfg.Drift.Enabled {
		// Continuous optimization — and any drift-triggered re-entry —
		// re-optimizes an already-bolted binary, which the real BOLT
		// refuses (§IV-C); the extension past that refusal is opt-in at
		// the bolt layer.
		plan.Core.Bolt.AllowReBolt = true
	}
	s, err := NewService(plan)
	if err != nil {
		return nil, err
	}
	if m.cfg.Drift.Enabled {
		s.store = profile.NewStore(profile.StoreOptions{
			Service:  s.Name,
			Capacity: m.cfg.Drift.StoreCapacity,
			HalfLife: m.cfg.Drift.StoreHalfLife,
			Replay:   m.cfg.Replay,
		})
		s.tracker = profile.NewTracker()
		// The continuous sampler streams into the store for the life of
		// the service; its sample timing goes through the same replay
		// seam as one-shot profiling windows.
		sopts := m.cfg.Drift.Stream
		if m.cfg.Replay.Active() {
			sopts.NextDeadline = m.cfg.Replay.PerfDeadline(sopts.DeadlineFunc())
		}
		s.streamer = perf.Stream(s.Proc, sopts, s.store.Ingest)
		s.Ctl.AttachProfileSource(s.store)
	}
	m.Add(s)
	return s, nil
}

// Add adopts an existing service into its name-hashed shard.
func (m *Manager) Add(s *Service) {
	sh := m.shards[m.shardIndex(s.Name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.services = append(sh.services, s)
}

// Services returns the managed services in deterministic name order.
// (The table is sharded, so insertion order is not meaningful; sorting
// by name makes every fleet-wide iteration — snapshots, reports, replay
// checkpoints — reproducible regardless of shard layout.)
func (m *Manager) Services() []*Service {
	var out []*Service
	for _, sh := range m.shards {
		out = append(out, sh.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// async routes one trace/telemetry write through the wave's flusher
// when one is installed, and runs it inline otherwise.
func (m *Manager) async(fn func()) {
	if f := m.fl; f != nil {
		f.enqueue(fn)
		return
	}
	fn()
}

// ScanResult is the first-stage verdict for one service.
type ScanResult struct {
	Service  *Service
	TopDown  cpu.TopDown
	Optimize bool
	// Throughput is the service's measured req/s over the scan window;
	// only populated when ScanOptions.MinThroughput gating is on.
	Throughput float64
	// Drift marks a verdict produced by a drift scan (ScanOptions.Drift):
	// Optimize then means "the live profile diverged from the layout's
	// build profile and every hysteresis guard passed", DriftScore is the
	// total-variation divergence, and DriftReason explains the verdict
	// (profile.ReasonDrift on trigger).
	Drift       bool
	DriftScore  float64
	DriftReason string
}

// ScanOptions configures a fleet scan. The zero value scans with the
// manager's configured window and no throughput floor, so
// Scan(ScanOptions{}) is the common fleet pass.
type ScanOptions struct {
	// Window is the simulated TopDown (and throughput) measurement
	// window per service; 0 means Config.Timing.Window.
	Window float64
	// MinThroughput, when positive, additionally measures each service's
	// current throughput over Window and withholds optimization from
	// services below the floor: near-idle services don't repay a
	// stop-the-world pause, whatever their TopDown shape says.
	MinThroughput float64
	// Drift switches the scan to drift mode: instead of TopDown-gating
	// Idle services, the scan walks Steady services with streaming
	// stores, scores each live window against its layout's build profile
	// and selects the ones whose drift verdict fired. Requires
	// Config.Drift.Enabled.
	Drift bool
	// ReoptPolicy overrides Config.Drift.Policy for this drift scan
	// (nil = the configured policy).
	ReoptPolicy *profile.ReoptPolicy
}

// Scan runs the first-stage TopDown check on every service (the
// DMon/GWP-style fleet profiling pass) and ranks candidates by front-end
// share, the feature Figure 9 shows predicts benefit. Order is
// deterministic: front-end share descending, then service name ascending
// on ties, so fleet schedules are reproducible. Only one shard's lock is
// held at a time while gathering the fleet, so a scan never stalls
// another shard's in-flight replacements.
func (m *Manager) Scan(opts ScanOptions) []ScanResult {
	if opts.Drift {
		return m.driftScan(opts)
	}
	if opts.Window == 0 {
		opts.Window = m.cfg.Timing.Window
	}
	services := m.Services()
	out := make([]ScanResult, 0, len(services))
	for _, s := range services {
		optimize, td := s.Ctl.ShouldOptimize(opts.Window)
		r := ScanResult{Service: s, TopDown: td, Optimize: optimize}
		if opts.MinThroughput > 0 {
			r.Throughput = s.Measure(ScanOptions{Window: opts.Window})
			if r.Throughput < opts.MinThroughput {
				r.Optimize = false
			}
		}
		s.mu.Lock()
		s.scanned = true
		s.selected = r.Optimize || m.cfg.SkipGate
		s.topdown = td
		s.mu.Unlock()
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TopDown.FrontEnd != out[j].TopDown.FrontEnd {
			return out[i].TopDown.FrontEnd > out[j].TopDown.FrontEnd
		}
		return out[i].Service.Name < out[j].Service.Name
	})
	return out
}

// driftScan is Scan's drift mode: every Steady service with a streaming
// store has its live trailing window summarized and checked against the
// profile its current layout was built from. Verdicts are journaled
// through the replay session (EvDriftDecision) before being acted on —
// the score is recomputed bit-exactly on replay from the replayed sample
// stream, so a drift-triggered wave replays byte-identically. Order is
// deterministic: divergence score descending, then name ascending.
func (m *Manager) driftScan(opts ScanOptions) []ScanResult {
	pol := m.cfg.Drift.Policy
	if opts.ReoptPolicy != nil {
		pol = opts.ReoptPolicy.WithDefaults()
		if pol.Window == 0 {
			pol.Window = m.cfg.Timing.ProfileDur
		}
	}
	var out []ScanResult
	for _, s := range m.Services() {
		if s.State() != Steady || s.store == nil || s.tracker == nil {
			continue
		}
		live := profile.Summarize(s.store.Window(pol.Window))
		dec := s.tracker.Check(live, s.store.Now(), pol)
		if dec.Reason == profile.ReasonNoBaseline && live.Total > 0 {
			// The post-replace settle window was too short to baseline the
			// layout (or the service went Steady unoptimized): adopt this
			// scan's live window so the next scan has something to diverge
			// from. Never a trigger by itself.
			s.tracker.Rebase(live, s.store.Now())
		}
		if err := dec.Journal(m.cfg.Replay, s.Name); err != nil {
			// The session diverged; the sticky error surfaces at the next
			// checkpoint. Withhold the trigger so a diverged replay cannot
			// launch a wave the recording never ran.
			dec.Trigger = false
		}
		s.mu.Lock()
		s.scanned = true
		s.selected = dec.Trigger
		td := s.topdown
		s.mu.Unlock()
		m.async(func() {
			s.rootSpan().Event(trace.EvDriftDecision,
				trace.Float("score", dec.Score),
				trace.Bool("trigger", dec.Trigger),
				trace.String("reason", dec.Reason))
		})
		out = append(out, ScanResult{
			Service:     s,
			TopDown:     td,
			Optimize:    dec.Trigger,
			Drift:       true,
			DriftScore:  dec.Score,
			DriftReason: dec.Reason,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DriftScore != out[j].DriftScore {
			return out[i].DriftScore > out[j].DriftScore
		}
		return out[i].Service.Name < out[j].Service.Name
	})
	return out
}

// Run is the whole fleet pass: scan every service, then drive each
// selected one through its optimization lifecycle on the worker pool.
// Per-service outcomes (including faults) land in the report, not in
// the error return, which is reserved for fleet-level misuse.
func (m *Manager) Run() (*FleetReport, error) {
	if len(m.Services()) == 0 {
		return nil, fmt.Errorf("fleet: no services added")
	}
	scan := m.Scan(ScanOptions{})
	m.Optimize(scan, WaveOptions{})
	// Round boundary for the whole wave: every service's terminal state
	// and controller hash must match the recording exactly.
	if r := m.cfg.Replay; r.Active() {
		for _, s := range m.Services() {
			if err := r.Checkpoint("service_final", s.Ctl.StateHash(),
				trace.String("service", s.Name), trace.String("state", s.State().String()),
				trace.Int("version", s.Ctl.Version())); err != nil {
				return nil, err
			}
		}
	}
	return m.Report(), nil
}

// WaveOptions configures one optimization wave.
type WaveOptions struct {
	// Serial drives the wave one service at a time in scan order,
	// bypassing the shard queues and the worker budget. It is forced
	// automatically while a record/replay session is active: replay
	// needs a deterministic decision order.
	Serial bool
	// NoCache runs this wave without the fleet layout cache: every
	// service pays its own perf2bolt+BOLT pipeline (the redundant-work
	// baseline the cache is measured against).
	NoCache bool
	// ReoptPolicy overrides Config.Drift.Policy for this wave's re-opt
	// budget enforcement: when the scan carries drift verdicts, at most
	// Policy.ShardBudget triggered services per shard are driven (ordered
	// by divergence score) and the rest are demoted to "budget" — a
	// fleet-wide phase turn must not become a fleet-wide pause storm.
	// Nil means the configured policy.
	ReoptPolicy *profile.ReoptPolicy
}

// Optimize drives every scan-selected service (every scanned service
// when SkipGate is set) through the lifecycle concurrently: selected
// services split into their name-hashed shard queues, each queue drains
// independently, and the global Config.Workers budget bounds how many
// lifecycles run at once across all shards. Unselected services
// transition Idle → Steady untouched. Trace-journal and telemetry
// writes are batched through a bounded flusher for the duration of the
// wave (unless the wave is serial); everything is flushed before
// Optimize returns. It blocks until the whole wave reaches a terminal
// state.
func (m *Manager) Optimize(scan []ScanResult, wave WaveOptions) {
	pol := m.cfg.Drift.Policy
	if wave.ReoptPolicy != nil {
		pol = wave.ReoptPolicy.WithDefaults()
	}
	budgetUsed := make(map[int]int)
	var selected []*Service
	for _, r := range scan {
		s := r.Service
		if s.rootSpan() == nil {
			sp := m.cfg.Tracer.Start(nil, "service",
				trace.Float("frontend_share", r.TopDown.FrontEnd))
			sp.SetService(s.Name)
			s.setRoot(sp)
		}
		if r.Drift {
			// Drift verdicts re-enter Steady services; non-triggered ones
			// simply stay Steady — there is nothing to transition. Triggered
			// ones are driven up to the per-shard re-opt budget, in scan
			// order (divergence score descending), and the overflow is
			// demoted with a journaled "budget" verdict so record/replay
			// agree on exactly which services ran.
			if !r.Optimize {
				continue
			}
			shard := m.shardIndex(s.Name)
			if pol.ShardBudget >= 0 && budgetUsed[shard] >= pol.ShardBudget {
				s.mu.Lock()
				s.selected = false
				s.mu.Unlock()
				dec := profile.Decision{Score: r.DriftScore, Reason: profile.ReasonBudget}
				dec.Journal(m.cfg.Replay, s.Name)
				m.async(func() {
					s.rootSpan().Event(trace.EvDriftDecision,
						trace.Float("score", dec.Score),
						trace.Bool("trigger", false),
						trace.String("reason", dec.Reason))
				})
				continue
			}
			budgetUsed[shard]++
			selected = append(selected, s)
			continue
		}
		if r.Optimize || m.cfg.SkipGate {
			selected = append(selected, s)
		} else if s.State() == Idle {
			// Not worth a round: the service stays on its current code.
			s.transition(Steady)
		}
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.Gauge("fleet_services").Set(float64(len(scan)))
		m.cfg.Metrics.Gauge("fleet_selected").Set(float64(len(selected)))
	}
	cache := m.cache
	if wave.NoCache {
		cache = nil
	}
	for _, s := range selected {
		s.Ctl.SetLayoutCache(cache)
	}

	if wave.Serial || m.cfg.Replay.Active() {
		// One service at a time in scan order; writes stay inline so the
		// replay journal sees every decision at its program point.
		for _, s := range selected {
			m.drive(s)
		}
		return
	}

	var fl *flusher
	if m.cfg.FlushBuffer >= 0 {
		fl = newFlusher(m.cfg.FlushBuffer)
		m.fl = fl
		for _, s := range selected {
			s.setEmit(fl.enqueue)
		}
	}

	// Per-shard queues drain independently; the token channel is the
	// global concurrency budget shared across them, so a hot shard can't
	// exceed Workers and a cold shard never waits on a foreign lock.
	queues := make([][]*Service, len(m.shards))
	for _, s := range selected {
		i := m.shardIndex(s.Name)
		queues[i] = append(queues[i], s)
	}
	tokens := make(chan struct{}, m.cfg.Workers)
	var wg sync.WaitGroup
	for _, q := range queues {
		if len(q) == 0 {
			continue
		}
		wg.Add(1)
		go func(q []*Service) {
			defer wg.Done()
			var swg sync.WaitGroup
			for _, s := range q {
				tokens <- struct{}{}
				swg.Add(1)
				go func(s *Service) {
					defer swg.Done()
					defer func() { <-tokens }()
					m.drive(s)
				}(s)
			}
			swg.Wait()
		}(q)
	}
	wg.Wait()

	if fl != nil {
		m.fl = nil
		for _, s := range selected {
			s.setEmit(nil)
		}
		fl.close()
	}
}

// acquirePause takes a slot in the global stop-the-world budget,
// blocking while MaxPauses other services are mid-replacement, and
// reports the wait into the stagger histogram.
func (m *Manager) acquirePause() {
	t0 := m.clock.Now()
	m.pauseSem <- struct{}{}
	m.pmu.Lock()
	m.inPause++
	if m.inPause > m.peakPause {
		m.peakPause = m.inPause
	}
	peak := m.peakPause
	m.pmu.Unlock()
	if mt := m.cfg.Metrics; mt != nil {
		wait := m.clock.Now().Sub(t0).Seconds()
		m.async(func() {
			mt.Histogram("fleet_pause_wait_seconds").Observe(wait)
			mt.Gauge("fleet_pauses_peak").Set(float64(peak))
		})
	}
}

func (m *Manager) releasePause() {
	m.pmu.Lock()
	m.inPause--
	m.pmu.Unlock()
	<-m.pauseSem
}

// PeakPauses reports the maximum number of services that were ever
// simultaneously inside a stop-the-world pause — never more than
// Config.MaxPauses.
func (m *Manager) PeakPauses() int {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	return m.peakPause
}
