package fleet

// flusher batches trace-journal and telemetry writes off the wave hot
// path. The tracer's journal and the metrics registry are each one lock
// domain shared by every worker; at fleet scale (1,000 services emitting
// transitions, retries, counters, and histogram observations) those
// locks become the wave's synchronization point. Workers instead enqueue
// the writes as closures into a bounded channel and a single background
// goroutine drains them in order — enqueue order is preserved globally,
// so each service's event sequence (which tests and operators read back
// per service) stays intact, while the workers only ever contend on one
// channel send.
//
// The channel is bounded: a wave that outruns the drain blocks on
// enqueue (backpressure) rather than growing an unbounded write queue.
// close() drains everything before returning, so once a wave's Optimize
// call returns, every metric and journal event of the wave is visible.
type flusher struct {
	ch   chan func()
	done chan struct{}
}

// newFlusher starts the drain goroutine with the given buffer bound.
func newFlusher(buf int) *flusher {
	f := &flusher{ch: make(chan func(), buf), done: make(chan struct{})}
	go func() {
		defer close(f.done)
		for fn := range f.ch {
			fn()
		}
	}()
	return f
}

// enqueue submits one write; blocks only when the buffer is full.
func (f *flusher) enqueue(fn func()) { f.ch <- fn }

// close waits for every enqueued write to land, then stops the drain
// goroutine. The flusher must not be used afterwards.
func (f *flusher) close() {
	close(f.ch)
	<-f.done
}
