package fleet

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/profile"
)

// Errors the profile ingestion API distinguishes so the control plane
// can map them to HTTP statuses (404 vs 409).
var (
	// ErrUnknownService reports that no managed service has the name.
	ErrUnknownService = errors.New("fleet: unknown service")
	// ErrNoProfileStore reports that the service exists but the fleet
	// runs with drift disabled, so there is no store to ingest into.
	ErrNoProfileStore = errors.New("fleet: profile ingestion disabled (no drift store)")
)

// findService returns the managed service with the name, or nil.
func (m *Manager) findService(name string) *Service {
	sh := m.shards[m.shardIndex(name)]
	for _, s := range sh.snapshot() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// IngestProfile feeds an externally collected batch of timestamped LBR
// samples (a fleet-wide profiling daemon's POST /profile body) into the
// named service's streaming store. The batch is journaled before it
// lands, so a recorded session that took external profile pushes
// replays them deterministically.
func (m *Manager) IngestProfile(name string, batch []profile.TimedSample) error {
	s := m.findService(name)
	if s == nil {
		return fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	if s.store == nil {
		return fmt.Errorf("%w: %q", ErrNoProfileStore, name)
	}
	return s.store.IngestBatch(batch)
}

// ProfileStatus is one service's streaming-profile document: the
// store's counters, the drift detector's latest score, and the
// heaviest decayed edges — what an operator polls to see whether the
// live profile still resembles the layout's build profile.
type ProfileStatus struct {
	profile.StoreStats
	DriftScore float64              `json:"drift_score"`
	TopEdges   []profile.EdgeWeight `json:"top_edges,omitempty"`
}

// profileStatusOf snapshots one service's store (which must be non-nil).
func profileStatusOf(s *Service, topN int) ProfileStatus {
	st := ProfileStatus{StoreStats: s.store.Stats()}
	if s.tracker != nil {
		st.DriftScore = s.tracker.LastScore()
	}
	st.TopEdges = profile.TopEdges(s.store.DecayedSummary(), topN)
	return st
}

// ProfileStatus returns the named service's streaming-profile document.
func (m *Manager) ProfileStatus(name string, topN int) (ProfileStatus, error) {
	s := m.findService(name)
	if s == nil {
		return ProfileStatus{}, fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	if s.store == nil {
		return ProfileStatus{}, fmt.Errorf("%w: %q", ErrNoProfileStore, name)
	}
	return profileStatusOf(s, topN), nil
}

// ProfileStatuses returns the documents for every service that has a
// store, sorted by name (services without stores are skipped, so the
// result is empty when drift is disabled).
func (m *Manager) ProfileStatuses(topN int) []ProfileStatus {
	out := []ProfileStatus{}
	for _, s := range m.Services() {
		if s.store == nil {
			continue
		}
		out = append(out, profileStatusOf(s, topN))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}
