package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/layout"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ControlPlane is the fleet's live HTTP surface: Prometheus metrics,
// the service snapshot, span trees / the event journal, and a health
// probe. It is read-only — every endpoint answers GET only — and safe
// to serve while an optimization wave is running: snapshots take
// per-service locks, the registry and tracer are internally
// synchronized.
//
//	GET /metrics             Prometheus text exposition (format 0.0.4)
//	GET /services            JSON array of ServiceStatus
//	GET /trace?service=X     span tree JSON ("" = all services)
//	GET /trace?format=jsonl  event journal, one JSON event per line
//	GET /cache               layout-cache stats (hits, misses, coalesced, hit rate)
//	GET /healthz             "ok"
type ControlPlane struct {
	m      *Manager
	reg    *telemetry.Registry
	tracer *trace.Tracer
}

// NewControlPlane wires the fleet's observable state into an HTTP
// handler set. Any of the three sources may be nil; the corresponding
// endpoints then serve empty documents rather than erroring.
func NewControlPlane(m *Manager, reg *telemetry.Registry, tracer *trace.Tracer) *ControlPlane {
	return &ControlPlane{m: m, reg: reg, tracer: tracer}
}

// Handler returns the control plane's route table.
func (cp *ControlPlane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", cp.getOnly(cp.metrics))
	mux.HandleFunc("/services", cp.getOnly(cp.services))
	mux.HandleFunc("/trace", cp.getOnly(cp.trace))
	mux.HandleFunc("/cache", cp.getOnly(cp.cache))
	mux.HandleFunc("/healthz", cp.getOnly(cp.healthz))
	return mux
}

func (cp *ControlPlane) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (cp *ControlPlane) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := cp.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (cp *ControlPlane) services(w http.ResponseWriter, r *http.Request) {
	var snap []ServiceStatus
	if cp.m != nil {
		snap = cp.m.Snapshot()
	}
	if snap == nil {
		snap = []ServiceStatus{}
	}
	writeJSON(w, snap)
}

func (cp *ControlPlane) trace(w http.ResponseWriter, r *http.Request) {
	service := r.URL.Query().Get("service")
	switch format := r.URL.Query().Get("format"); format {
	case "", "tree":
		tree := cp.tracer.Tree(service)
		if tree == nil {
			tree = []*trace.SpanNode{}
		}
		writeJSON(w, tree)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		if cp.tracer == nil {
			return
		}
		j := cp.tracer.Journal()
		if service != "" {
			for _, e := range j.ByService(service) {
				b, err := json.Marshal(e)
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				w.Write(append(b, '\n'))
			}
			return
		}
		if err := j.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want tree or jsonl)", format), http.StatusBadRequest)
	}
}

// CacheStatus is the /cache document: the layout cache's counters plus
// the derived hit rate, or enabled=false when the fleet runs cacheless.
type CacheStatus struct {
	Enabled bool         `json:"enabled"`
	Stats   layout.Stats `json:"stats"`
	HitRate float64      `json:"hit_rate"`
}

func (cp *ControlPlane) cache(w http.ResponseWriter, r *http.Request) {
	var doc CacheStatus
	if cp.m != nil {
		if stats, ok := cp.m.CacheStats(); ok {
			doc = CacheStatus{Enabled: true, Stats: stats, HitRate: stats.HitRate()}
		}
	}
	writeJSON(w, doc)
}

func (cp *ControlPlane) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
