package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/layout"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ControlPlane is the fleet's live HTTP surface: Prometheus metrics,
// the service snapshot, span trees / the event journal, streaming
// profile ingestion, and a health probe. Every endpoint but /profile is
// read-only, and all are safe to serve while an optimization wave is
// running: snapshots take per-service locks, the registry, tracer, and
// profile stores are internally synchronized.
//
//	GET  /metrics             Prometheus text exposition (format 0.0.4)
//	GET  /services            JSON array of ServiceStatus
//	GET  /trace?service=X     span tree JSON ("" = all services)
//	GET  /trace?format=jsonl  event journal, one JSON event per line
//	GET  /cache               layout-cache stats (hits, misses, coalesced, hit rate)
//	GET  /profile?service=X   streaming-profile status ("" = all services; &top=N edges)
//	POST /profile             ingest {"service": ..., "samples": [...]} LBR batches
//	GET  /healthz             "ok"
type ControlPlane struct {
	m      *Manager
	reg    *telemetry.Registry
	tracer *trace.Tracer
}

// NewControlPlane wires the fleet's observable state into an HTTP
// handler set. Any of the three sources may be nil; the corresponding
// endpoints then serve empty documents rather than erroring.
func NewControlPlane(m *Manager, reg *telemetry.Registry, tracer *trace.Tracer) *ControlPlane {
	return &ControlPlane{m: m, reg: reg, tracer: tracer}
}

// Handler returns the control plane's route table.
func (cp *ControlPlane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", cp.getOnly(cp.metrics))
	mux.HandleFunc("/services", cp.getOnly(cp.services))
	mux.HandleFunc("/trace", cp.getOnly(cp.trace))
	mux.HandleFunc("/cache", cp.getOnly(cp.cache))
	mux.HandleFunc("/profile", cp.profile)
	mux.HandleFunc("/healthz", cp.getOnly(cp.healthz))
	return mux
}

func (cp *ControlPlane) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (cp *ControlPlane) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := cp.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (cp *ControlPlane) services(w http.ResponseWriter, r *http.Request) {
	var snap []ServiceStatus
	if cp.m != nil {
		snap = cp.m.Snapshot()
	}
	if snap == nil {
		snap = []ServiceStatus{}
	}
	writeJSON(w, snap)
}

func (cp *ControlPlane) trace(w http.ResponseWriter, r *http.Request) {
	service := r.URL.Query().Get("service")
	switch format := r.URL.Query().Get("format"); format {
	case "", "tree":
		tree := cp.tracer.Tree(service)
		if tree == nil {
			tree = []*trace.SpanNode{}
		}
		writeJSON(w, tree)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		if cp.tracer == nil {
			return
		}
		j := cp.tracer.Journal()
		if service != "" {
			for _, e := range j.ByService(service) {
				b, err := json.Marshal(e)
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				w.Write(append(b, '\n'))
			}
			return
		}
		if err := j.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want tree or jsonl)", format), http.StatusBadRequest)
	}
}

// CacheStatus is the /cache document: the layout cache's counters plus
// the derived hit rate, or enabled=false when the fleet runs cacheless.
type CacheStatus struct {
	Enabled bool         `json:"enabled"`
	Stats   layout.Stats `json:"stats"`
	HitRate float64      `json:"hit_rate"`
}

func (cp *ControlPlane) cache(w http.ResponseWriter, r *http.Request) {
	var doc CacheStatus
	if cp.m != nil {
		if stats, ok := cp.m.CacheStats(); ok {
			doc = CacheStatus{Enabled: true, Stats: stats, HitRate: stats.HitRate()}
		}
	}
	writeJSON(w, doc)
}

// ProfilePush is the POST /profile request body: one batch of
// timestamped LBR samples for one service.
type ProfilePush struct {
	Service string                `json:"service"`
	Samples []profile.TimedSample `json:"samples"`
}

// profile serves the streaming-profile surface: GET returns store
// status (one service or all), POST ingests an external sample batch.
func (cp *ControlPlane) profile(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		cp.profileStatus(w, r)
	case http.MethodPost:
		cp.profileIngest(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (cp *ControlPlane) profileStatus(w http.ResponseWriter, r *http.Request) {
	if cp.m == nil {
		writeJSON(w, []ProfileStatus{})
		return
	}
	top := 10
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad top %q", v), http.StatusBadRequest)
			return
		}
		top = n
	}
	if name := r.URL.Query().Get("service"); name != "" {
		st, err := cp.m.ProfileStatus(name, top)
		if err != nil {
			http.Error(w, err.Error(), profileErrStatus(err))
			return
		}
		writeJSON(w, st)
		return
	}
	writeJSON(w, cp.m.ProfileStatuses(top))
}

func (cp *ControlPlane) profileIngest(w http.ResponseWriter, r *http.Request) {
	var push ProfilePush
	if err := json.NewDecoder(r.Body).Decode(&push); err != nil {
		http.Error(w, fmt.Sprintf("bad profile push: %v", err), http.StatusBadRequest)
		return
	}
	if push.Service == "" {
		http.Error(w, "profile push missing service", http.StatusBadRequest)
		return
	}
	if cp.m == nil {
		http.Error(w, ErrUnknownService.Error(), http.StatusNotFound)
		return
	}
	if err := cp.m.IngestProfile(push.Service, push.Samples); err != nil {
		http.Error(w, err.Error(), profileErrStatus(err))
		return
	}
	records := 0
	for _, ts := range push.Samples {
		records += len(ts.Records)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]int{"samples": len(push.Samples), "records": records})
}

// profileErrStatus maps the manager's profile-API sentinels to HTTP:
// an unknown service is 404, a service without a store is 409 (the
// request is well-formed; the fleet's configuration conflicts with it).
func profileErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownService):
		return http.StatusNotFound
	case errors.Is(err, ErrNoProfileStore):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func (cp *ControlPlane) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
