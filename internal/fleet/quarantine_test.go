package fleet

import (
	"errors"
	"flag"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads/sqldb"
)

// replayFleetJournal points TestReplayFleetJournal at a recorded
// quarantine-wave journal (the artifact a failing test dumps).
var replayFleetJournal = flag.String("replay.fleet.journal", "",
	"path to a recorded fleet quarantine journal to re-execute")

// quarantineMeta is the session-meta identity of a recorded quarantine
// wave: enough for TestReplayFleetJournal to rebuild the fixture.
func quarantineMeta(service string) []trace.Attr {
	return []trace.Attr{
		trace.String("kind", "fleet-quarantine"),
		trace.String("service", service),
	}
}

// recordQuarantine starts a recording session for a quarantine-wave test
// and registers a cleanup that, on failure, dumps the journal to the
// test artifacts directory and logs the one-line replay command.
func recordQuarantine(t *testing.T, service string) *replay.Session {
	t.Helper()
	sess := replay.NewRecorder(0)
	if err := sess.Meta(quarantineMeta(service)...); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		path, err := sess.DumpArtifact("fleet-" + t.Name())
		if err != nil {
			t.Logf("journal dump failed: %v", err)
			return
		}
		t.Logf("repro: go test ./internal/fleet -run TestReplayFleetJournal -args -replay.fleet.journal=%s", path)
	})
	return sess
}

// quarantineManager builds a one-worker-per-service manager tuned for
// fast waves; services are added by the caller with their own core-level
// fault hooks. A non-nil session records (or replays) the whole wave.
func quarantineManager(t *testing.T, workers int, reg *telemetry.Registry, sess *replay.Session) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Workers: workers,
		Robustness: RobustnessConfig{
			MaxRounds:    2,
			ConvergeGain: -1,
			MaxRetries:   1,
			RetryBackoff: time.Microsecond,
		},
		Sleep:    func(time.Duration) {},
		SkipGate: true,
		Timing:   TimingConfig{ProfileDur: 0.0004, Warm: 0.00015, Window: 0.0002},
		Metrics:  reg,
		Replay:   sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func addSQLService(t *testing.T, m *Manager, name string, hook func(op string, n int) error) *Service {
	t.Helper()
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{
		Name: name, Workload: db, Input: "read_only", Threads: 1,
		Core: core.Options{NoChargePause: true, FaultHook: hook},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0002)
	return s
}

// TestTraceeFaultQuarantinesNotFails: a tracee-level fault inside every
// Replace attempt — the transactional-rollback path, not a stage-hook
// fault — must trip the circuit breaker into Quarantined at the old
// version, never Failed, and the process must remain runnable.
func TestTraceeFaultQuarantinesNotFails(t *testing.T) {
	boom := errors.New("injected tracee fault")
	reg := telemetry.NewRegistry()
	m := quarantineManager(t, 1, reg, recordQuarantine(t, "svc"))
	s := addSQLService(t, m, "svc", func(op string, n int) error {
		if n == 5 {
			return boom
		}
		return nil
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}

	if got := s.State(); got != Quarantined {
		t.Fatalf("ended %s, want Quarantined (err: %v)", got, s.Err())
	}
	if v := s.Ctl.Version(); v != 0 {
		t.Errorf("quarantined at version %d, want 0 (last good)", v)
	}
	if !errors.Is(s.Err(), boom) {
		t.Errorf("recorded error %v does not wrap the injected fault", s.Err())
	}
	if got := s.Rollbacks(); got != 2 {
		t.Errorf("rollbacks = %d, want 2 (1+MaxRetries attempts)", got)
	}
	if v := reg.Counter("fleet_quarantines_total").Value(); v != 1 {
		t.Errorf("fleet_quarantines_total = %v, want 1", v)
	}
	if v := reg.Gauge("fleet_quarantined").Value(); v != 1 {
		t.Errorf("fleet_quarantined = %v, want 1", v)
	}
	if v := reg.Counter("fleet_failures_total").Value(); v != 0 {
		t.Errorf("fleet_failures_total = %v, want 0", v)
	}
	if v := reg.Counter("core_txn_rollbacks_total").Value(); v != 2 {
		t.Errorf("core_txn_rollbacks_total = %v, want 2", v)
	}

	// The rolled-back process is not wedged: it keeps serving.
	before := s.Proc.Fault()
	s.Proc.RunFor(0.0003)
	if before != nil || s.Proc.Fault() != nil {
		t.Errorf("process faulted after quarantine: %v", s.Proc.Fault())
	}
	rep := m.Report().Services[0]
	if rep.State != Quarantined || rep.Rollbacks != 2 {
		t.Errorf("report: state %s rollbacks %d", rep.State, rep.Rollbacks)
	}
}

// TestTraceeFaultHealsAfterRetry: a fault that only hits the first
// Replace attempt is absorbed by the retry — the wave ends Steady on an
// optimized version and the strike counter is reset.
func TestTraceeFaultHealsAfterRetry(t *testing.T) {
	boom := errors.New("transient tracee fault")
	reg := telemetry.NewRegistry()
	m := quarantineManager(t, 1, reg, recordQuarantine(t, "svc"))
	attempts := 0
	s := addSQLService(t, m, "svc", func(op string, n int) error {
		if n == 0 {
			attempts++
		}
		if attempts == 1 {
			return boom
		}
		return nil
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != Steady {
		t.Fatalf("ended %s, want Steady after retry (err: %v)", got, s.Err())
	}
	if s.Ctl.Version() == 0 {
		t.Error("no optimized version live after healed retry")
	}
	if got := s.Rollbacks(); got != 0 {
		t.Errorf("rollbacks = %d, want 0 after a committed replace", got)
	}
	if v := reg.Counter("fleet_quarantines_total").Value(); v != 0 {
		t.Errorf("fleet_quarantines_total = %v, want 0", v)
	}
}

// TestSecondRoundQuarantinePinsLastGoodVersion: when round 1 commits and
// round 2's replacement keeps rolling back, the breaker must pin the
// service at version 1 — not revert it to C0 and not fail it.
func TestSecondRoundQuarantinePinsLastGoodVersion(t *testing.T) {
	boom := errors.New("round-2 tracee fault")
	reg := telemetry.NewRegistry()
	m := quarantineManager(t, 1, reg, recordQuarantine(t, "svc"))
	var svc *Service
	svc = addSQLService(t, m, "svc", func(op string, n int) error {
		if svc.Ctl.Version() >= 1 {
			return boom
		}
		return nil
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := svc.State(); got != Quarantined {
		t.Fatalf("ended %s, want Quarantined (err: %v)", got, svc.Err())
	}
	if v := svc.Ctl.Version(); v != 1 {
		t.Errorf("pinned at version %d, want 1 (the last good version)", v)
	}
	if len(svc.Rounds()) != 1 {
		t.Errorf("recorded %d rounds, want 1", len(svc.Rounds()))
	}
	if v := reg.Counter("fleet_reverts_total").Value(); v != 0 {
		t.Errorf("quarantine triggered a revert: fleet_reverts_total = %v", v)
	}
	svc.Proc.RunFor(0.0003)
	if err := svc.Proc.Fault(); err != nil {
		t.Errorf("process faulted while serving the pinned version: %v", err)
	}
}

// TestMidWaveFaultIsolation drives a concurrent wave (run under -race in
// CI) where one service's replacements persistently fault at the tracee
// level: that service must quarantine while its neighbors optimize to
// Steady, and no service may end Failed.
func TestMidWaveFaultIsolation(t *testing.T) {
	boom := errors.New("injected tracee fault")
	reg := telemetry.NewRegistry()
	// A concurrent wave is inherently nondeterministic: no recording.
	m := quarantineManager(t, 3, reg, nil)
	var sick atomic.Bool
	sick.Store(true)
	a := addSQLService(t, m, "healthy-a", nil)
	b := addSQLService(t, m, "sick", func(op string, n int) error {
		if sick.Load() && op == "write" {
			return boom
		}
		return nil
	})
	c := addSQLService(t, m, "healthy-c", nil)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}

	for _, s := range []*Service{a, c} {
		if got := s.State(); got != Steady {
			t.Errorf("%s ended %s, want Steady (err: %v)", s.Name, got, s.Err())
		}
		if s.Ctl.Version() == 0 {
			t.Errorf("%s has no optimized version", s.Name)
		}
	}
	if got := b.State(); got != Quarantined {
		t.Errorf("sick service ended %s, want Quarantined (err: %v)", got, b.Err())
	}
	for _, s := range m.Services() {
		if s.State() == Failed {
			t.Errorf("%s wedged in Failed", s.Name)
		}
		if !s.State().Terminal() {
			t.Errorf("%s left non-terminal: %s", s.Name, s.State())
		}
	}
	// All three processes keep serving after the wave.
	sick.Store(false)
	for _, s := range m.Services() {
		s.Proc.RunFor(0.0002)
		if err := s.Proc.Fault(); err != nil {
			t.Errorf("%s faulted post-wave: %v", s.Name, err)
		}
	}
}

// TestReplayFleetJournal re-executes a quarantine-wave journal named on
// the command line — the command a failing quarantine test logs. The
// fixture is rebuilt from the journal's session-meta event and the wave
// runs with no live fault hook: every fault, clock read, jitter draw,
// and state-hash checkpoint comes from (and is verified against) the
// journal alone.
func TestReplayFleetJournal(t *testing.T) {
	if *replayFleetJournal == "" {
		t.Skip("no -replay.fleet.journal given; this test re-executes a shipped repro artifact")
	}
	events, err := replay.LoadFile(*replayFleetJournal)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := replay.MetaOf(events)
	if err != nil {
		t.Fatal(err)
	}
	nameAny, _ := meta.Get("service")
	name, _ := nameAny.(string)
	if name == "" {
		t.Fatal("journal meta has no service name")
	}
	sess, err := replay.NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Meta(quarantineMeta(name)...); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m := quarantineManager(t, 1, reg, sess)
	s := addSQLService(t, m, name, nil)
	if _, err := m.Run(); err != nil {
		t.Fatalf("replayed wave: %v", err)
	}
	if err := sess.Finish(); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	t.Logf("replayed %s: service %s ended %s at version %d (%d rollbacks)",
		*replayFleetJournal, name, s.State(), s.Ctl.Version(), s.Rollbacks())
}
