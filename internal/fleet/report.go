package fleet

import (
	"fmt"
	"io"
	"sort"
)

// ServiceReport is the per-service outcome of a fleet pass.
type ServiceReport struct {
	Name      string
	State     State
	Selected  bool    // chosen by the scan (or forced via SkipGate)
	FrontEnd  float64 // TopDown front-end share from the scan
	Rounds    []RoundResult
	Retries   int
	Rollbacks int // consecutive transactional replace rollbacks at the end

	Baseline     float64 // pre-optimization steady-state req/s
	FinalSpeedup float64 // last round's speedup vs baseline (1.0 if none)
	PauseSeconds float64 // total simulated stop-the-world time
	Err          string  // last recorded stage error, "" if none
}

// FleetReport aggregates one fleet pass, sorted by service name.
type FleetReport struct {
	Services []ServiceReport
}

// Report snapshots every managed service's lifecycle record.
func (m *Manager) Report() *FleetReport {
	var out []ServiceReport
	for _, s := range m.Services() {
		s.mu.Lock()
		r := ServiceReport{
			Name:         s.Name,
			State:        s.state,
			Selected:     s.selected,
			FrontEnd:     s.topdown.FrontEnd,
			Rounds:       append([]RoundResult(nil), s.rounds...),
			Retries:      s.retries,
			Rollbacks:    s.rollbacks,
			Baseline:     s.baseline.Throughput,
			FinalSpeedup: 1,
		}
		if s.lastErr != nil {
			r.Err = s.lastErr.Error()
		}
		s.mu.Unlock()
		for _, rr := range r.Rounds {
			r.PauseSeconds += rr.PauseSeconds
		}
		if n := len(r.Rounds); n > 0 && r.State != Reverted {
			r.FinalSpeedup = r.Rounds[n-1].Speedup
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return &FleetReport{Services: out}
}

// Speedups returns final speedup by service name (the old
// OptimizeCandidates return shape, for table-style consumers).
func (r *FleetReport) Speedups() map[string]float64 {
	out := make(map[string]float64, len(r.Services))
	for _, s := range r.Services {
		out[s.Name] = s.FinalSpeedup
	}
	return out
}

// Write renders the per-service table cmd/fleetd and the fleet
// experiment print.
func (r *FleetReport) Write(w io.Writer) {
	fmt.Fprintf(w, "%-24s %-10s %4s %7s %8s %9s %8s %7s\n",
		"service", "state", "sel", "rounds", "speedup", "pause_ms", "retries", "FE%")
	for _, s := range r.Services {
		sel := "-"
		if s.Selected {
			sel = "yes"
		}
		fmt.Fprintf(w, "%-24s %-10s %4s %7d %7.2fx %9.2f %8d %6.1f%%\n",
			s.Name, s.State, sel, len(s.Rounds), s.FinalSpeedup,
			s.PauseSeconds*1e3, s.Retries, s.FrontEnd*100)
		if s.Err != "" {
			fmt.Fprintf(w, "%-24s   last error: %s\n", "", s.Err)
		}
	}
}
