package fleet

import (
	"fmt"
	"io"
)

// ServiceReport is the per-service outcome of a fleet pass.
type ServiceReport struct {
	Name      string
	State     State
	Selected  bool    // chosen by the scan (or forced via SkipGate)
	FrontEnd  float64 // TopDown front-end share from the scan
	Rounds    []RoundResult
	Retries   int
	Rollbacks int // consecutive transactional replace rollbacks at the end

	Baseline     float64 // pre-optimization steady-state req/s
	FinalSpeedup float64 // last round's speedup vs baseline (1.0 if none)
	PauseSeconds float64 // total simulated stop-the-world time

	// OSRFramesMapped/OSRFallbacks total the on-stack-replacement
	// outcomes across the service's rounds.
	OSRFramesMapped int
	OSRFallbacks    int

	Err string // last recorded stage error, "" if none
}

// FleetReport aggregates one fleet pass, sorted by service name.
type FleetReport struct {
	Services []ServiceReport
}

// Report renders every managed service's lifecycle record. It is a thin
// view over Manager.Snapshot, the single source for fleet reporting.
func (m *Manager) Report() *FleetReport {
	var out []ServiceReport
	for _, st := range m.Snapshot() {
		out = append(out, ServiceReport{
			Name:            st.Name,
			State:           st.State,
			Selected:        st.Selected,
			FrontEnd:        st.FrontEnd,
			Rounds:          st.Rounds,
			Retries:         st.Retries,
			Rollbacks:       st.Rollbacks,
			Baseline:        st.Baseline,
			FinalSpeedup:    st.Speedup,
			PauseSeconds:    st.PauseSeconds,
			OSRFramesMapped: st.OSRFramesMapped,
			OSRFallbacks:    st.OSRFallbacks,
			Err:             st.LastErr,
		})
	}
	return &FleetReport{Services: out}
}

// Speedups returns final speedup by service name (the old
// OptimizeCandidates return shape, for table-style consumers).
func (r *FleetReport) Speedups() map[string]float64 {
	out := make(map[string]float64, len(r.Services))
	for _, s := range r.Services {
		out[s.Name] = s.FinalSpeedup
	}
	return out
}

// Write renders the per-service table cmd/fleetd and the fleet
// experiment print.
func (r *FleetReport) Write(w io.Writer) {
	fmt.Fprintf(w, "%-24s %-10s %4s %7s %8s %9s %4s %8s %7s\n",
		"service", "state", "sel", "rounds", "speedup", "pause_ms", "osr", "retries", "FE%")
	for _, s := range r.Services {
		sel := "-"
		if s.Selected {
			sel = "yes"
		}
		fmt.Fprintf(w, "%-24s %-10s %4s %7d %7.2fx %9.2f %4d %8d %6.1f%%\n",
			s.Name, s.State, sel, len(s.Rounds), s.FinalSpeedup,
			s.PauseSeconds*1e3, s.OSRFramesMapped, s.Retries, s.FrontEnd*100)
		if s.Err != "" {
			fmt.Fprintf(w, "%-24s   last error: %s\n", "", s.Err)
		}
	}
}
