package fleet

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/workloads/wl"
)

// State is a service's position in the optimization lifecycle.
type State int

const (
	// Idle: adopted, not yet driven.
	Idle State = iota
	// Profiling: recording LBR samples from the live process (step 1).
	Profiling
	// Building: perf2bolt + BOLT running in the background (step 2).
	Building
	// Replacing: stop-the-world code replacement (steps 3-6).
	Replacing
	// Measuring: settling and measuring the new steady state.
	Measuring
	// Steady: resting — converged (or skipped by the scan gate) and
	// serving on its best code version. Terminal for a wave, but not
	// forever: a drift scan that finds the live profile has diverged
	// from the layout's build profile re-enters the loop at Profiling.
	Steady
	// Reverted: terminal — restored to C0, either by the regression
	// guard or as fault cleanup.
	Reverted
	// Failed: terminal — a stage fault persisted through retries and no
	// revert was possible.
	Failed
	// Quarantined: terminal — the replace-rollback circuit breaker
	// tripped: Config.QuarantineAfter consecutive transactional rollbacks
	// mean something is persistently wrong with replacement on this
	// service. It is pinned at its last good code version (each rollback
	// left target and controller exactly as they were) and excluded from
	// further optimization.
	Quarantined
)

func (s State) String() string {
	switch s {
	case Idle:
		return "Idle"
	case Profiling:
		return "Profiling"
	case Building:
		return "Building"
	case Replacing:
		return "Replacing"
	case Measuring:
		return "Measuring"
	case Steady:
		return "Steady"
	case Reverted:
		return "Reverted"
	case Failed:
		return "Failed"
	case Quarantined:
		return "Quarantined"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Terminal reports whether the state ends a service's lifecycle.
func (s State) Terminal() bool {
	return s == Steady || s == Reverted || s == Failed || s == Quarantined
}

// legalNext enumerates the lifecycle edges. Faults may jump any active
// stage to Reverted/Failed; Measuring closes the round loop back to
// Profiling; Steady → Profiling is the drift re-entry edge (guarded by
// the profile.ReoptPolicy hysteresis, never taken spontaneously).
var legalNext = map[State][]State{
	Idle:        {Profiling, Steady},
	Profiling:   {Building, Reverted, Failed},
	Building:    {Replacing, Reverted, Failed},
	Replacing:   {Measuring, Reverted, Failed, Quarantined},
	Measuring:   {Profiling, Steady, Reverted, Failed},
	Steady:      {Profiling},
	Reverted:    {},
	Failed:      {},
	Quarantined: {},
}

// CanTransition reports whether from → to is a legal lifecycle edge.
func CanTransition(from, to State) bool {
	for _, n := range legalNext[from] {
		if n == to {
			return true
		}
	}
	return false
}

// transition moves the service to the next state, enforcing the edge
// set. The manager's drive loop only ever requests legal edges; an
// illegal request is a bug, reported as an error for tests to assert
// on and recorded so the service is never silently wedged.
func (s *Service) transition(to State) error {
	// Read the clock before taking the lock: a record/replay clock
	// journals the read and must never nest inside s.mu.
	stamp := s.now()
	s.mu.Lock()
	if !CanTransition(s.state, to) {
		err := fmt.Errorf("fleet: %s: illegal transition %s → %s", s.Name, s.state, to)
		s.lastErr = err
		s.mu.Unlock()
		return err
	}
	from := s.state
	s.state = to
	s.updatedAt = stamp
	root := s.root
	emit := s.emit
	s.mu.Unlock()
	// Journal the edge outside the lock: event emission takes the
	// tracer's own locks and must never nest inside s.mu. During a
	// concurrent wave the write goes through the flusher — the drain
	// preserves enqueue order, and a service's transitions are enqueued
	// sequentially by its one worker, so per-service event order holds.
	write := func() {
		root.Event(trace.EvTransition,
			trace.String("from", from.String()), trace.String("to", to.String()))
		if to.Terminal() {
			root.End(nil)
		}
	}
	if emit != nil {
		emit(write)
	} else {
		write()
	}
	return nil
}

// RoundResult records one completed optimization round of one service.
type RoundResult struct {
	Version      int     `json:"version"`       // code version live after the round
	Throughput   float64 `json:"throughput"`    // post-round steady-state req/s
	Speedup      float64 `json:"speedup"`       // vs the service's pre-optimization baseline
	Gain         float64 `json:"gain"`          // vs the previous round's throughput
	PauseSeconds float64 `json:"pause_seconds"` // simulated stop-the-world time of the round
	P95Latency   float64 `json:"p95_latency"`   // post-round p95 request latency, cycles
	// OSRFramesMapped/OSRFallbacks report how the round migrated parked
	// stack frames: transferred in place between layouts vs left to
	// drain through a stack-live copy.
	OSRFramesMapped int `json:"osr_frames_mapped,omitempty"`
	OSRFallbacks    int `json:"osr_fallbacks,omitempty"`
}

// counter bumps an unlabeled fleet counter (the registry is a nil-safe
// sink when metrics are discarded). Routed through the wave flusher so
// a thousand workers don't serialize on the registry lock mid-wave.
func (m *Manager) counter(name string) {
	m.async(func() { m.cfg.Metrics.Counter(name).Inc() })
}

// stageCounter bumps a per-stage fleet counter vector (flusher-routed).
func (m *Manager) stageCounter(name string, stage State) {
	m.async(func() { m.cfg.Metrics.CounterVec(name, "stage").With(stage.String()).Inc() })
}

// attempt runs one stage try: the injected fault hook first (tests
// force failures per stage with it), then the real work. Injected
// faults are journaled so chaos runs show up in the trace. The fault
// decision routes through the replay session, so a recorded wave's
// stage faults are re-injected from the journal alone on replay.
func (m *Manager) attempt(s *Service, stage State, fn func() error) error {
	err := m.cfg.Replay.Fault("fleet.stage",
		trace.Attrs{trace.String("service", s.Name), trace.String("stage", stage.String())},
		func() error {
			if h := m.cfg.FaultHook; h != nil {
				return h(s, stage)
			}
			return nil
		})
	if err != nil {
		m.async(func() {
			s.rootSpan().EventErr(trace.EvFaultInjected, err,
				trace.String("stage", stage.String()))
		})
		return err
	}
	return fn()
}

// withRetry drives one stage to success or exhaustion: up to
// 1+MaxRetries attempts with exponential host-time backoff between
// them. Each wait is the doubling base plus a jittered share drawn from
// the manager's seeded source (same seed ⇒ same schedule), so
// fleet-wide retries don't synchronize. Every failed attempt is
// recorded on the service, counted, and journaled; every backoff wait
// is journaled with its duration.
func (m *Manager) withRetry(s *Service, stage State, fn func() error) error {
	backoff := m.cfg.Robustness.RetryBackoff
	for att := 0; ; att++ {
		err := m.attempt(s, stage, fn)
		if err == nil {
			return nil
		}
		s.mu.Lock()
		s.lastErr = fmt.Errorf("fleet: %s: %s: %w", s.Name, stage, err)
		s.mu.Unlock()
		m.stageCounter("fleet_stage_errors_total", stage)
		if att >= m.cfg.Robustness.MaxRetries {
			return err
		}
		s.mu.Lock()
		s.retries++
		s.mu.Unlock()
		root := s.rootSpan()
		att := att
		m.async(func() {
			root.EventErr(trace.EvRetry, err,
				trace.String("stage", stage.String()), trace.Int("attempt", att+1))
		})
		m.stageCounter("fleet_retries_total", stage)
		wait := backoff + time.Duration(float64(backoff)*backoffJitterFrac*m.jitter())
		m.async(func() {
			root.Event(trace.EvBackoff,
				trace.String("stage", stage.String()),
				trace.Float("seconds", wait.Seconds()))
		})
		m.clock.Sleep(wait)
		backoff *= 2
	}
}

// drive runs one service's whole lifecycle: baseline, then optimization
// rounds until convergence, the round cap, a regression revert, or a
// persistent fault. It always leaves the service in a terminal state.
func (m *Manager) drive(s *Service) {
	// A drift re-entry starts from Steady: count it, start the cooldown
	// clock, and re-baseline below against the now-stale layout's
	// throughput — the round's speedup then measures what re-converging
	// recovered.
	if s.State() == Steady {
		s.mu.Lock()
		s.reopts++
		s.mu.Unlock()
		if s.tracker != nil && s.store != nil {
			s.tracker.MarkReopt(s.store.Now())
		}
	}
	// Baseline steady state before any optimization.
	s.Proc.RunFor(m.cfg.Timing.Warm)
	base := wl.MeasureStats(s.Proc, s.Driver, m.cfg.Timing.Window)
	s.mu.Lock()
	s.baseline = base
	prior := len(s.rounds)
	s.mu.Unlock()

	prev := base.Throughput
	for round := 1; ; round++ {
		if s.transition(Profiling) != nil {
			return
		}
		rsp := s.Ctl.StartRound(prior + round)
		var raw *perf.RawProfile
		if err := m.withRetry(s, Profiling, func() error {
			raw = s.Ctl.Profile(m.cfg.Timing.ProfileDur)
			return nil
		}); err != nil {
			s.Ctl.EndRound(err)
			m.cleanupFault(s)
			return
		}

		if err := s.transition(Building); err != nil {
			s.Ctl.EndRound(err)
			return
		}
		var build *core.BuildStats
		if err := m.withRetry(s, Building, func() error {
			b, err := s.Ctl.BuildOptimized(raw)
			if err == nil {
				build = b
			}
			return err
		}); err != nil {
			s.Ctl.EndRound(err)
			m.cleanupFault(s)
			return
		}

		if err := s.transition(Replacing); err != nil {
			s.Ctl.EndRound(err)
			return
		}
		var rs *core.ReplaceStats
		if err := m.withRetry(s, Replacing, func() error {
			m.acquirePause()
			defer m.releasePause()
			r, err := s.Ctl.Replace(build.Result.Binary)
			if err != nil {
				// The transaction rolled the target back to the last good
				// version; record the strike for the quarantine breaker.
				s.mu.Lock()
				s.rollbacks++
				s.mu.Unlock()
				return err
			}
			s.mu.Lock()
			s.rollbacks = 0
			s.mu.Unlock()
			rs = r
			// A new layout is live: older streamed samples profiled code
			// addresses that no longer exist, and that includes the profile
			// the layout was just built from — its addresses are the *old*
			// layout's. Drop both; the drift baseline is re-established from
			// the post-replace stream once the service settles into Steady.
			if s.store != nil {
				s.store.Epoch()
			}
			if s.tracker != nil {
				s.tracker.Clear()
			}
			return nil
		}); err != nil {
			s.Ctl.EndRound(err)
			// A replace fault is recoverable by design (the rollback left
			// target and controller intact), so retries already happened
			// above. If the strikes show replacement itself is what keeps
			// failing, quarantine: pin the service where it is instead of
			// tearing down a known-good version. Otherwise (the fault never
			// reached Replace — e.g. an injected stage fault) fall back to
			// revert-or-fail cleanup.
			if s.Rollbacks() >= m.cfg.Robustness.QuarantineAfter {
				m.quarantine(s)
				return
			}
			m.cleanupFault(s)
			return
		}

		if err := s.transition(Measuring); err != nil {
			s.Ctl.EndRound(err)
			return
		}
		msp := m.cfg.Tracer.Start(rsp, "measure")
		var win wl.WindowStats
		if err := m.withRetry(s, Measuring, func() error {
			s.Proc.RunFor(m.cfg.Timing.Warm)
			win = wl.MeasureStats(s.Proc, s.Driver, m.cfg.Timing.Window)
			return s.Proc.Fault()
		}); err != nil {
			msp.End(err)
			s.Ctl.EndRound(err)
			m.cleanupFault(s)
			return
		}

		res := RoundResult{
			Version:      s.Ctl.Version(),
			Throughput:   win.Throughput,
			PauseSeconds: rs.PauseSeconds,
			P95Latency:   win.P95,

			OSRFramesMapped: rs.OSRFramesMapped,
			OSRFallbacks:    rs.OSRFallbacks,
		}
		if base.Throughput > 0 {
			res.Speedup = win.Throughput / base.Throughput
		}
		if prev > 0 {
			res.Gain = win.Throughput / prev
		}
		msp.SetAttrs(
			trace.Float("throughput", win.Throughput),
			trace.Float("speedup", res.Speedup),
		)
		msp.End(nil)
		rsp.SetAttrs(trace.Float("speedup", res.Speedup))
		s.Ctl.EndRound(nil)
		stamp := s.now()
		s.mu.Lock()
		s.rounds = append(s.rounds, res)
		s.updatedAt = stamp
		s.mu.Unlock()
		m.counter("fleet_rounds_total")
		if mt := m.cfg.Metrics; mt != nil {
			m.async(func() {
				mt.Histogram("fleet_speedup").Observe(res.Speedup)
				mt.Histogram("fleet_pause_seconds").Observe(rs.PauseSeconds)
			})
		}

		// Regression guard (§VI-C4): cumulative speedup below the bar
		// means the optimized layout is hurting this service — go home
		// to C0 and stop.
		if m.cfg.Robustness.RevertBelow > 0 && res.Speedup < m.cfg.Robustness.RevertBelow {
			m.revert(s)
			return
		}
		// Converged or out of budget: stay on the current version.
		if round >= m.cfg.Robustness.MaxRounds || res.Gain < 1+m.cfg.Robustness.ConvergeGain {
			s.transition(Steady)
			if s.tracker != nil && s.store != nil {
				// The drift baseline is the landed layout's own live window:
				// the same address space every future drift window streams
				// from, so stationary serving scores near zero and a phase
				// turn scores the real divergence. (An empty window — the
				// settle period was too short for the sampler — leaves the
				// tracker baseline-less; the next drift scan installs its
				// live window instead.) Rebase also starts the dwell guard.
				s.tracker.Rebase(profile.Summarize(s.store.Window(m.cfg.Drift.Policy.Window)), s.store.Now())
			}
			m.counter("fleet_steady_total")
			return
		}
		prev = win.Throughput
	}
}

// revert sends the service back to C0 (with retries — Revert faults are
// retried like any stage; the hook stage for injection is Reverted) and
// parks it in Reverted, or in Failed if even the revert cannot land.
func (m *Manager) revert(s *Service) {
	err := m.withRetry(s, Reverted, func() error {
		m.acquirePause()
		defer m.releasePause()
		_, err := s.Ctl.Revert()
		return err
	})
	if err != nil {
		s.transition(Failed)
		m.counter("fleet_failures_total")
		return
	}
	s.transition(Reverted)
	if s.tracker != nil {
		// Back on C0: there is no built layout left to go stale.
		s.tracker.Clear()
	}
	m.counter("fleet_reverts_total")
}

// quarantine parks a service in Quarantined: the replace-rollback
// circuit breaker tripped, so the service keeps serving on its last good
// code version (C0 if no round ever landed) and leaves the optimization
// loop. Unlike Failed, nothing about the service is wedged or suspect —
// every failed round was rolled back transactionally.
func (m *Manager) quarantine(s *Service) {
	err, rollbacks := s.Err(), s.Rollbacks()
	m.async(func() {
		s.rootSpan().EventErr(trace.EvQuarantine, err,
			trace.Int("rollbacks", rollbacks))
	})
	s.transition(Quarantined)
	m.counter("fleet_quarantines_total")
	m.async(func() { m.cfg.Metrics.Gauge("fleet_quarantined").Add(1) })
}

// cleanupFault resolves a persistently failed stage: if optimized code
// is live, try to revert to C0 (ending Reverted); otherwise — or if the
// revert itself fails — the service is Failed. Either way it is
// terminal, never wedged.
func (m *Manager) cleanupFault(s *Service) {
	if s.Ctl.Version() > 0 {
		m.revert(s)
		return
	}
	s.transition(Failed)
	m.counter("fleet_failures_total")
}
