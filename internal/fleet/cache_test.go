package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads/sqldb"
)

// homogeneousFleet builds n replicas of one sqldb image under a manager
// tuned for fast waves, all sharing one workload build (the "identical
// binaries across the fleet" deployment shape).
func homogeneousFleet(t *testing.T, n int, cfg Config) (*Manager, []*Service) {
	t.Helper()
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Robustness.MaxRounds == 0 {
		cfg.Robustness.MaxRounds = 1
	}
	cfg.SkipGate = true
	cfg.Timing = TimingConfig{ProfileDur: 0.0004, Warm: 0.00015, Window: 0.0002}
	cfg.Robustness.RetryBackoff = time.Microsecond
	cfg.Sleep = func(time.Duration) {}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svcs := make([]*Service, 0, n)
	for i := 0; i < n; i++ {
		s, err := m.AddService(ServicePlan{
			Name:     "replica-" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Workload: db, Input: "read_only", Threads: 1,
			Core: core.Options{NoChargePause: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Proc.RunFor(0.0002)
		svcs = append(svcs, s)
	}
	return m, svcs
}

// TestHomogeneousWaveHitsCache is the tentpole's payoff: a wave of
// identical replicas performs one BOLT run and serves everyone else
// from the layout cache (hit or single-flight coalesce).
func TestHomogeneousWaveHitsCache(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-service wave in -short mode")
	}
	const n = 16
	reg := telemetry.NewRegistry()
	m, svcs := homogeneousFleet(t, n, Config{Workers: 4, Metrics: reg})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range svcs {
		if st := s.State(); !st.Terminal() || st == Failed {
			t.Errorf("%s ended %s", s.Name, st)
		}
		if v := s.Ctl.Version(); v < 1 {
			t.Errorf("%s still at version %d: cached layout never landed", s.Name, v)
		}
	}
	stats, ok := m.CacheStats()
	if !ok {
		t.Fatal("cache disabled despite default config")
	}
	if stats.Requests() != n {
		t.Errorf("cache requests = %d, want %d (one per replica round)", stats.Requests(), n)
	}
	if stats.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 BOLT run for identical replicas", stats.Misses)
	}
	if hr := stats.HitRate(); hr < 0.9 {
		t.Errorf("hit rate = %.3f, want > 0.9 for a homogeneous fleet", hr)
	}
	if bolts := reg.Counter("core_bolt_invocations_total").Value(); bolts != float64(stats.Misses) {
		t.Errorf("bolt invocations = %v, want %d (one per miss)", bolts, stats.Misses)
	}
	// The shared layout must be applied, not just accounted: replicas on
	// the cached code keep (or improve) their throughput. The Small
	// config over micro windows yields only marginal wins, so this
	// asserts no-regression rather than a speedup floor.
	for name, sp := range m.Report().Speedups() {
		if sp < 0.95 {
			t.Errorf("%s at %.2fx of baseline on the cached layout", name, sp)
		}
	}
}

// TestWaveNoCacheAblation: WaveOptions.NoCache is the redundant-work
// baseline — every replica pays its own BOLT run.
func TestWaveNoCacheAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-service wave in -short mode")
	}
	const n = 4
	reg := telemetry.NewRegistry()
	m, _ := homogeneousFleet(t, n, Config{Workers: 2, Metrics: reg})
	m.Optimize(m.Scan(ScanOptions{}), WaveOptions{NoCache: true})
	if stats, _ := m.CacheStats(); stats.Requests() != 0 {
		t.Errorf("NoCache wave touched the cache: %+v", stats)
	}
	if bolts := reg.Counter("core_bolt_invocations_total").Value(); bolts != n {
		t.Errorf("bolt invocations = %v, want %d without the cache", bolts, n)
	}
}

// TestNoLayoutCacheConfig: Config.Cache.Disable disables the cache
// fleet-wide and CacheStats reports it.
func TestNoLayoutCacheConfig(t *testing.T) {
	m, err := NewManager(Config{Cache: CacheConfig{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if m.LayoutCache() != nil {
		t.Error("NoLayoutCache still built a cache")
	}
	if _, ok := m.CacheStats(); ok {
		t.Error("CacheStats ok on a cacheless fleet")
	}
}

// TestScanMinThroughputGate: the ScanOptions floor withholds
// optimization from services below it, independent of the TopDown gate.
func TestScanMinThroughputGate(t *testing.T) {
	m, svcs := homogeneousFleet(t, 2, Config{})
	m.cfg.SkipGate = false // the floor must gate on its own
	scan := m.Scan(ScanOptions{Window: 0.0004, MinThroughput: 1e12})
	for _, r := range scan {
		if r.Optimize {
			t.Errorf("%s selected despite the absurd floor", r.Service.Name)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s: floor gating must populate Throughput", r.Service.Name)
		}
	}
	m.Optimize(scan, WaveOptions{})
	for _, s := range svcs {
		if v := s.Ctl.Version(); v != 0 {
			t.Errorf("%s optimized to version %d despite the floor", s.Name, v)
		}
	}
	// A trivial floor keeps everyone eligible.
	scan = m.Scan(ScanOptions{Window: 0.0004, MinThroughput: 1e-9})
	for _, r := range scan {
		if r.Throughput <= 0 {
			t.Errorf("%s: Throughput not measured", r.Service.Name)
		}
	}
}

// TestDeprecatedShimsRemoved pins the deprecation schedule's end state:
// the one-release compatibility shims (Manager.ScanWindow,
// Service.Throughput) are gone, and the struct-options API is the only
// surface. If someone reintroduces a shim, this fails until the
// deprecation doc is revisited.
func TestDeprecatedShimsRemoved(t *testing.T) {
	for _, c := range []struct {
		recv   reflect.Type
		method string
	}{
		{reflect.TypeOf(&Manager{}), "ScanWindow"},
		{reflect.TypeOf(&Service{}), "Throughput"},
	} {
		if _, ok := c.recv.MethodByName(c.method); ok {
			t.Errorf("deprecated shim %s.%s still exists; it was scheduled for removal", c.recv, c.method)
		}
	}
	// The replacement surface still works.
	m, svcs := homogeneousFleet(t, 2, Config{})
	if via := m.Scan(ScanOptions{Window: 0.0004}); len(via) != 2 {
		t.Fatalf("Scan lost services: %d", len(via))
	}
	if tp := svcs[0].Measure(ScanOptions{Window: 0.0004}); tp <= 0 {
		t.Errorf("Measure = %v, want > 0", tp)
	}
}

// TestServicesDeterministicOrder: the sharded table still iterates in
// sorted name order wherever the fleet is enumerated.
func TestServicesDeterministicOrder(t *testing.T) {
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		if _, err := m.AddService(ServicePlan{Name: name, Workload: db, Input: "read_only", Threads: 1}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "beta", "mid", "omega", "zeta"}
	svcs := m.Services()
	snap := m.Snapshot()
	if len(svcs) != len(want) || len(snap) != len(want) {
		t.Fatalf("lost services: %d / %d", len(svcs), len(snap))
	}
	for i, name := range want {
		if svcs[i].Name != name {
			t.Errorf("Services()[%d] = %s, want %s", i, svcs[i].Name, name)
		}
		if snap[i].Name != name {
			t.Errorf("Snapshot()[%d] = %s, want %s", i, snap[i].Name, name)
		}
	}
}

// TestInjectedCacheViaCoreOptions: a caller-supplied layout.Cache (here
// the layout.Memory used as a plain dependency) reaches the controller
// through ServicePlan.Core.LayoutCache and is actually consulted.
func TestInjectedCacheViaCoreOptions(t *testing.T) {
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	injected := layout.NewMemory(4, nil)
	m, err := NewManager(Config{
		Cache:      CacheConfig{Layout: injected},
		SkipGate:   true,
		Robustness: RobustnessConfig{MaxRounds: 1},
		Timing:     TimingConfig{ProfileDur: 0.0004, Warm: 0.00015, Window: 0.0002},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.LayoutCache() != layout.Cache(injected) {
		t.Fatal("manager did not adopt the injected cache")
	}
	s, err := m.AddService(ServicePlan{
		Name: "svc", Workload: db, Input: "read_only", Threads: 1,
		Core: core.Options{NoChargePause: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0002)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if st := injected.Stats(); st.Misses != 1 || st.Entries != 1 {
		t.Errorf("injected cache unused: %+v", st)
	}
}

func cacheWaveMeta() []trace.Attr {
	return []trace.Attr{trace.String("kind", "fleet-cache-wave")}
}

// TestCacheHitWaveReplayRoundTrip records a two-replica wave whose
// second service is served from the layout cache, then re-executes it
// from the serialized journal. Cache decisions are journaled as
// replayable events, so the replayed wave must re-derive the same
// key/outcome sequence, reach the same versions, and re-record a
// byte-identical journal.
func TestCacheHitWaveReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("record/replay wave in -short mode")
	}
	run := func(sess *replay.Session) (*Manager, []*Service) {
		m, svcs := homogeneousFleet(t, 2, Config{Replay: sess})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m, svcs
	}

	rec := replay.NewRecorder(0)
	if err := rec.Meta(cacheWaveMeta()...); err != nil {
		t.Fatal(err)
	}
	m, svcs := run(rec)
	if stats, _ := m.CacheStats(); stats.Misses != 1 || stats.Hits != 1 {
		t.Fatalf("recorded wave cache stats = %+v, want 1 miss + 1 hit", stats)
	}
	if err := rec.Finish(); err != nil {
		t.Fatalf("recording incomplete: %v", err)
	}
	var recorded bytes.Buffer
	if err := rec.WriteJSONL(&recorded); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(recorded.String(), `"cache_decision"`); n != 2 {
		t.Errorf("journal has %d cache_decision events, want 2", n)
	}

	events, err := replay.Load(bytes.NewReader(recorded.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := replay.NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Meta(cacheWaveMeta()...); err != nil {
		t.Fatal(err)
	}
	m2, svcs2 := run(sess)
	if err := sess.Finish(); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if stats, _ := m2.CacheStats(); stats.Misses != 1 || stats.Hits != 1 {
		t.Errorf("replayed wave cache stats = %+v, want 1 miss + 1 hit", stats)
	}
	for i := range svcs {
		if svcs2[i].State() != svcs[i].State() || svcs2[i].Ctl.Version() != svcs[i].Ctl.Version() {
			t.Errorf("%s replayed to %s v%d, recorded %s v%d", svcs[i].Name,
				svcs2[i].State(), svcs2[i].Ctl.Version(), svcs[i].State(), svcs[i].Ctl.Version())
		}
	}
	var rerecorded bytes.Buffer
	if err := sess.WriteJSONL(&rerecorded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recorded.Bytes(), rerecorded.Bytes()) {
		t.Errorf("re-recorded journal is not byte-identical (%d vs %d bytes)",
			recorded.Len(), rerecorded.Len())
	}
}
