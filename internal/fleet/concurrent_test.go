package fleet

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/sqldb"
)

// TestConcurrentFleet is the race-detector workout for the whole
// subsystem: 8 clean services run 2 optimization rounds each on the
// worker pool while one service per lifecycle stage (plus one whose
// revert itself faults) is fault-injected. Every service must end in a
// terminal state — never wedged — and the pause-stagger semaphore must
// hold.
func TestConcurrentFleet(t *testing.T) {
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := docdb.Build(docdb.Small())
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected fault")
	// Which stage each fault-* service trips on; the hook is called from
	// several workers at once, so it only reads this map.
	faultAt := map[string]State{
		"fault-profiling": Profiling,
		"fault-building":  Building,
		"fault-replacing": Replacing,
		"fault-measuring": Measuring,
	}
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		Workers:   6,
		MaxPauses: 2,
		Robustness: RobustnessConfig{
			MaxRounds:    2,
			ConvergeGain: -1, // run both rounds even if round 2 gains nothing
			MaxRetries:   1,
			RetryBackoff: time.Microsecond,
		},
		Sleep:    func(time.Duration) {},
		SkipGate: true, // small-scale workloads sit below the TopDown gate
		Timing:   TimingConfig{ProfileDur: 0.0004, Warm: 0.00015, Window: 0.0002},
		Metrics:  reg,
		FaultHook: func(s *Service, stage State) error {
			if faultAt[s.Name] == stage && stage != Idle {
				return boom
			}
			if s.Name == "fault-revert" && (stage == Measuring || stage == Reverted) {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var clean []string
	for i := 0; i < 4; i++ {
		clean = append(clean, fmt.Sprintf("sql%d", i), fmt.Sprintf("doc%d", i))
	}
	add := func(name string) {
		w, input := db, "read_only"
		if strings.HasPrefix(name, "doc") {
			w, input = doc, "read_update"
		}
		s, err := m.AddService(ServicePlan{
			Name: name, Workload: w, Input: input, Threads: 1,
			// The default 2ms pause would swamp these sub-millisecond
			// windows; this test is about lifecycle, not pause cost.
			Core: core.Options{NoChargePause: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Proc.RunFor(0.0002)
	}
	for _, name := range clean {
		add(name)
	}
	for name := range faultAt {
		add(name)
	}
	add("fault-revert")

	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]*Service{}
	for _, s := range m.Services() {
		byName[s.Name] = s
		if !s.State().Terminal() {
			t.Errorf("%s wedged in non-terminal state %s", s.Name, s.State())
		}
	}
	for _, name := range clean {
		s := byName[name]
		if got := s.State(); got != Steady {
			t.Errorf("%s ended %s, want Steady: %v", name, got, s.Err())
			continue
		}
		if got := len(s.Rounds()); got != 2 {
			t.Errorf("%s completed %d rounds, want 2", name, got)
		}
		if v := s.Ctl.Version(); v != 2 {
			t.Errorf("%s is on code version %d, want 2", name, v)
		}
		if err := s.Err(); err != nil {
			t.Errorf("%s recorded error despite clean run: %v", name, err)
		}
	}
	wantTerminal := map[string]State{
		"fault-profiling": Failed,   // nothing replaced yet → nothing to undo
		"fault-building":  Failed,   //
		"fault-replacing": Failed,   //
		"fault-measuring": Reverted, // optimized code was live → rolled back
		"fault-revert":    Failed,   // the rollback itself kept faulting
	}
	for name, want := range wantTerminal {
		s := byName[name]
		if got := s.State(); got != want {
			t.Errorf("%s ended %s, want %s", name, got, want)
		}
		if s.Err() == nil {
			t.Errorf("%s has no recorded fault", name)
		}
	}

	// The stop-the-world stagger: pauses happened, but never more than
	// MaxPauses at once.
	if peak := m.PeakPauses(); peak < 1 || peak > m.Config().MaxPauses {
		t.Errorf("peak concurrent pauses %d, want in [1, %d]", peak, m.Config().MaxPauses)
	}

	// Telemetry cross-check: 8 clean services × 2 rounds; every fault
	// service aborts its round before it is recorded.
	if v := reg.Counter("fleet_rounds_total").Value(); v != 16 {
		t.Errorf("fleet_rounds_total = %v, want 16", v)
	}
	if v := reg.Counter("fleet_steady_total").Value(); v != 8 {
		t.Errorf("fleet_steady_total = %v, want 8", v)
	}
	if v := reg.Counter("fleet_reverts_total").Value(); v != 1 {
		t.Errorf("fleet_reverts_total = %v, want 1", v)
	}
	if v := reg.Counter("fleet_failures_total").Value(); v != 4 {
		t.Errorf("fleet_failures_total = %v, want 4", v)
	}

	// The report covers the whole fleet and agrees with the services.
	if len(rep.Services) != len(clean)+5 {
		t.Fatalf("report has %d services, want %d", len(rep.Services), len(clean)+5)
	}
	for _, sr := range rep.Services {
		if sr.State != byName[sr.Name].State() {
			t.Errorf("report state %s for %s disagrees with service %s",
				sr.State, sr.Name, byName[sr.Name].State())
		}
		if !sr.Selected {
			t.Errorf("%s not marked selected despite SkipGate", sr.Name)
		}
	}
}
