package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// MarshalJSON renders lifecycle states by name, so snapshots read as
// "Steady" rather than an enum ordinal.
func (s State) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the state names MarshalJSON produces, so
// /services documents round-trip through consumers.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for st := Idle; st <= Quarantined; st++ {
		if st.String() == name {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("fleet: unknown state %q", name)
}

// ServiceStatus is the externally consumable snapshot of one managed
// service: everything the report table, the control plane's /services
// endpoint, and operators polling the fleet need, with JSON field names
// stable across releases.
type ServiceStatus struct {
	Name     string `json:"name"`
	State    State  `json:"state"`
	Selected bool   `json:"selected"`
	// FrontEnd is the TopDown front-end share from the scan (Figure 9's
	// selection feature).
	FrontEnd float64 `json:"frontend_share"`
	// Version is the optimized code version the service serves on (0 =
	// original code, including after a revert).
	Version   int           `json:"version"`
	Rounds    []RoundResult `json:"rounds,omitempty"`
	Retries   int           `json:"retries"`
	Rollbacks int           `json:"rollbacks"`
	// Baseline is the pre-optimization steady-state throughput.
	Baseline float64 `json:"baseline_throughput"`
	// Speedup is the last round's speedup vs baseline (1.0 before any
	// round lands and after a revert).
	Speedup float64 `json:"speedup"`
	// PauseSeconds is the total simulated stop-the-world time.
	PauseSeconds float64 `json:"pause_seconds"`
	// OSRFramesMapped/OSRFallbacks total the on-stack-replacement
	// outcomes across all rounds: frames transferred between layouts in
	// place vs frames left to copy-based migration.
	OSRFramesMapped int `json:"osr_frames_mapped"`
	OSRFallbacks    int `json:"osr_fallbacks"`
	// DriftScore is the latest divergence the drift detector computed for
	// this service (0 until the first drift scan after a layout lands).
	DriftScore float64 `json:"drift_score"`
	// Reopts counts drift-triggered re-optimizations: completed trips back
	// around the loop from Steady.
	Reopts    int       `json:"reopts"`
	LastErr   string    `json:"last_error,omitempty"`
	AddedAt   time.Time `json:"added_at"`
	UpdatedAt time.Time `json:"updated_at"`
}

// Status snapshots one service under its lock.
func (s *Service) Status() ServiceStatus {
	s.mu.Lock()
	st := ServiceStatus{
		Name:      s.Name,
		State:     s.state,
		Selected:  s.selected,
		FrontEnd:  s.topdown.FrontEnd,
		Rounds:    append([]RoundResult(nil), s.rounds...),
		Retries:   s.retries,
		Rollbacks: s.rollbacks,
		Baseline:  s.baseline.Throughput,
		Speedup:   1,
		Reopts:    s.reopts,
		AddedAt:   s.addedAt,
		UpdatedAt: s.updatedAt,
	}
	if s.lastErr != nil {
		st.LastErr = s.lastErr.Error()
	}
	s.mu.Unlock()
	if s.tracker != nil {
		st.DriftScore = s.tracker.LastScore()
	}
	for _, rr := range st.Rounds {
		st.PauseSeconds += rr.PauseSeconds
		st.OSRFramesMapped += rr.OSRFramesMapped
		st.OSRFallbacks += rr.OSRFallbacks
	}
	if n := len(st.Rounds); n > 0 && st.State != Reverted {
		st.Version = st.Rounds[n-1].Version
		st.Speedup = st.Rounds[n-1].Speedup
	}
	return st
}

// Snapshot captures the whole fleet, sorted by service name. It is safe
// to call at any time, including mid-wave: each service is snapshotted
// under its own lock. Every reporting surface — the text report, the
// control plane's JSON endpoint — is built on top of it.
func (m *Manager) Snapshot() []ServiceStatus {
	services := m.Services()
	out := make([]ServiceStatus, 0, len(services))
	for _, s := range services {
		out = append(out, s.Status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
