package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/profile"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/sqldb"
)

func TestFleetScanAndOptimize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fleet run in -short mode")
	}
	// A front-end-bound database and a cache that does not need help.
	db, err := sqldb.Build(sqldb.Full())
	if err != nil {
		t.Fatal(err)
	}
	kv, err := kvcache.Build(kvcache.Full())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Robustness: RobustnessConfig{MaxRounds: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddService(ServicePlan{Name: "db", Workload: db, Input: "read_only", Threads: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddService(ServicePlan{Name: "kv", Workload: kv, Input: "set10_get90", Threads: 4}); err != nil {
		t.Fatal(err)
	}

	// Warm and scan.
	for _, s := range m.Services() {
		s.Proc.RunFor(0.002)
	}
	scan := m.Scan(ScanOptions{Window: 0.002})
	if len(scan) != 2 {
		t.Fatal("scan lost services")
	}
	// The database ranks first (highest front-end share) and is selected;
	// the cache is not.
	if scan[0].Service.Name != "db" || !scan[0].Optimize {
		t.Errorf("db not selected: %+v", scan[0])
	}
	if scan[1].Service.Name != "kv" || scan[1].Optimize {
		t.Errorf("kv should be skipped: %+v", scan[1])
	}

	m.Optimize(scan, WaveOptions{})
	rep := m.Report()
	speedups := rep.Speedups()
	if speedups["db"] < 1.15 {
		t.Errorf("db speedup %.2f too low", speedups["db"])
	}
	if speedups["kv"] != 1.0 {
		t.Errorf("kv was optimized despite the gate: %.2f", speedups["kv"])
	}
	for _, sr := range rep.Services {
		if sr.State != Steady {
			t.Errorf("%s ended %s, want Steady", sr.Name, sr.State)
		}
	}
	if v := m.Services()[1].Ctl.Version(); v != 0 {
		t.Errorf("gated kv advanced to version %d", v)
	}
}

func TestFleetRevertSafetyNet(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fleet run in -short mode")
	}
	db, err := sqldb.Build(sqldb.Full())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Robustness: RobustnessConfig{MaxRounds: 1, RevertBelow: 99}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{Name: "db", Workload: db, Input: "read_only", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.002)
	// Absurd revert threshold: even a good speedup gets reverted, proving
	// the safety net restores ~original throughput.
	m.Optimize(m.Scan(ScanOptions{Window: 0.002}), WaveOptions{})
	if st := s.State(); st != Reverted {
		t.Fatalf("service ended %s, want Reverted", st)
	}
	if s.Ctl.Version() < 2 {
		t.Error("revert should have advanced the version counter")
	}
	rep := m.Report().Services[0]
	s.Proc.RunFor(0.002)
	if rep.Baseline <= 0 {
		t.Fatalf("no baseline recorded: %+v", rep)
	}
	if ratio := s.Measure(ScanOptions{Window: 0.003}) / rep.Baseline; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("reverted service at %.2fx of baseline; want ≈1.0", ratio)
	}
}

func TestScanDeterministicOrder(t *testing.T) {
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Identical replicas added out of name order: their TopDown shares
	// tie exactly, so the scan must fall back to name order.
	for _, name := range []string{"r2", "r0", "r1"} {
		s, err := m.AddService(ServicePlan{Name: name, Workload: db, Input: "read_only", Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		s.Proc.RunFor(0.0004)
	}
	scan := m.Scan(ScanOptions{Window: 0.0004})
	var got []string
	for _, r := range scan {
		got = append(got, r.Service.Name)
	}
	want := "r0,r1,r2"
	if strings.Join(got, ",") != want {
		t.Errorf("scan order %v, want %s", got, want)
	}
	for i := 1; i < len(scan); i++ {
		if scan[i].TopDown != scan[0].TopDown {
			t.Errorf("identical replicas diverged in TopDown: %+v vs %+v",
				scan[0].TopDown, scan[i].TopDown)
		}
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 4 || cfg.MaxPauses != 1 || cfg.Robustness.MaxRounds != 2 ||
		cfg.Robustness.MaxRetries != 2 || cfg.Robustness.ConvergeGain != 0.02 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.Timing.ProfileDur <= 0 || cfg.Timing.Warm <= 0 || cfg.Timing.Window <= 0 ||
		cfg.Robustness.RetryBackoff <= 0 || cfg.Clock == nil || cfg.JitterSeed == 0 {
		t.Errorf("unset durations/sources not defaulted: %+v", cfg)
	}
	for _, bad := range []Config{
		{Workers: -1},
		{MaxPauses: -2},
		{Robustness: RobustnessConfig{MaxRounds: -1}},
		{Robustness: RobustnessConfig{MaxRetries: -3}},
		{Timing: TimingConfig{ProfileDur: -0.1}},
		{Timing: TimingConfig{Warm: -0.1}},
		{Timing: TimingConfig{Window: -0.1}},
		{Robustness: RobustnessConfig{RevertBelow: -1}},
		{Robustness: RobustnessConfig{RetryBackoff: -1}},
		// Nonsense combos Validate must refuse, not silently resolve:
		// an injected cache alongside "disable the cache", a quarantine
		// bar the retry budget can never reach, and drift policies with
		// out-of-range or negative hysteresis.
		{Cache: CacheConfig{Layout: layout.NewMemory(1, nil), Disable: true}},
		{Robustness: RobustnessConfig{MaxRetries: 3, QuarantineAfter: 2}},
		{Drift: DriftConfig{Enabled: true, Policy: profile.ReoptPolicy{MinDivergence: 1.5}}},
		{Drift: DriftConfig{Enabled: true, Policy: profile.ReoptPolicy{MinDivergence: -0.5}}},
		{Drift: DriftConfig{Enabled: true, Policy: profile.ReoptPolicy{MinDwell: -1}}},
		{Drift: DriftConfig{Enabled: true, Policy: profile.ReoptPolicy{Cooldown: -1}}},
		{Drift: DriftConfig{StoreCapacity: -1}},
		{Drift: DriftConfig{StoreHalfLife: -0.5}},
	} {
		if _, err := NewManager(bad); err == nil {
			t.Errorf("config %+v accepted, want error", bad)
		}
	}
	// Negative ConvergeGain is the documented "never converge early"
	// sentinel, not an error.
	if _, err := NewManager(Config{Robustness: RobustnessConfig{ConvergeGain: -1}}); err != nil {
		t.Errorf("negative ConvergeGain rejected: %v", err)
	}
	// Drift defaults flow from the timing block: the policy window tracks
	// the profiling duration unless pinned.
	dcfg, err := Config{Drift: DriftConfig{Enabled: true}}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if dcfg.Drift.Policy.MinDivergence != 0.35 || dcfg.Drift.Policy.Window != dcfg.Timing.ProfileDur {
		t.Errorf("drift defaults not filled: %+v", dcfg.Drift.Policy)
	}
}

// TestFlatConfigCompat pins the one-release migration path: a FlatConfig
// carrying the old flat fields converts to the identical nested Config.
func TestFlatConfigCompat(t *testing.T) {
	flat := FlatConfig{
		Workers: 3, MaxPauses: 2, Shards: 5,
		MaxRounds: 4, ConvergeGain: 0.05, RevertBelow: 1.01,
		MaxRetries: 1, QuarantineAfter: 9, RetryBackoff: time.Millisecond,
		ProfileDur: 0.001, Warm: 0.002, Window: 0.003,
		NoLayoutCache: true, SkipGate: true, JitterSeed: 7,
	}
	cfg := flat.Config()
	if cfg.Workers != 3 || cfg.MaxPauses != 2 || cfg.Shards != 5 || !cfg.SkipGate || cfg.JitterSeed != 7 {
		t.Errorf("top-level fields lost: %+v", cfg)
	}
	if cfg.Timing != (TimingConfig{ProfileDur: 0.001, Warm: 0.002, Window: 0.003}) {
		t.Errorf("timing fields lost: %+v", cfg.Timing)
	}
	want := RobustnessConfig{MaxRounds: 4, ConvergeGain: 0.05, RevertBelow: 1.01,
		MaxRetries: 1, QuarantineAfter: 9, RetryBackoff: time.Millisecond}
	if cfg.Robustness != want {
		t.Errorf("robustness fields lost: %+v", cfg.Robustness)
	}
	if !cfg.Cache.Disable {
		t.Errorf("NoLayoutCache not mapped: %+v", cfg.Cache)
	}
	if _, err := NewManager(cfg); err != nil {
		t.Errorf("converted config rejected: %v", err)
	}
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(ServicePlan{Name: "x"}); err == nil {
		t.Error("service without workload accepted")
	}
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(ServicePlan{Workload: db, Input: "read_only"}); err == nil {
		t.Error("service without name accepted")
	}
	// Threads <= 0 falls back to the workload default.
	s, err := NewService(ServicePlan{Name: "x", Workload: db, Input: "read_only"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan.Threads != db.Threads {
		t.Errorf("threads %d, want workload default %d", s.Plan.Threads, db.Threads)
	}
}

func TestRunEmptyManager(t *testing.T) {
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Error("Run on an empty fleet should error")
	}
}
