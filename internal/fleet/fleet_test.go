package fleet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/sqldb"
)

func TestFleetScanAndOptimize(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run in -short mode")
	}
	// A front-end-bound database and a cache that does not need help.
	db, err := sqldb.Build(sqldb.Full())
	if err != nil {
		t.Fatal(err)
	}
	kv, err := kvcache.Build(kvcache.Full())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewService("db", db, "read_only", 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewService("kv", kv, "set10_get90", 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := &Manager{Services: []*Service{s1, s2}}

	// Warm and scan.
	for _, s := range m.Services {
		s.Proc.RunFor(0.002)
	}
	scan := m.Scan(0.002)
	if len(scan) != 2 {
		t.Fatal("scan lost services")
	}
	// The database ranks first (highest front-end share) and is selected;
	// the cache is not.
	if scan[0].Service.Name != "db" || !scan[0].Optimize {
		t.Errorf("db not selected: %+v", scan[0])
	}
	if scan[1].Service.Name != "kv" || scan[1].Optimize {
		t.Errorf("kv should be skipped: %+v", scan[1])
	}

	speedups, err := m.OptimizeCandidates(scan, 0.004, 0.002, 0.003, 0)
	if err != nil {
		t.Fatal(err)
	}
	if speedups["db"] < 1.15 {
		t.Errorf("db speedup %.2f too low", speedups["db"])
	}
	if speedups["kv"] != 1.0 {
		t.Errorf("kv was optimized despite the gate: %.2f", speedups["kv"])
	}
}

func TestFleetRevertSafetyNet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run in -short mode")
	}
	db, err := sqldb.Build(sqldb.Full())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewService("db", db, "read_only", 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := &Manager{Services: []*Service{s}}
	s.Proc.RunFor(0.002)
	scan := m.Scan(0.002)
	// Absurd revert threshold: even a good speedup gets reverted, proving
	// the safety net restores ~original throughput.
	speedups, err := m.OptimizeCandidates(scan, 0.004, 0.002, 0.003, 99.0)
	if err != nil {
		t.Fatal(err)
	}
	if sp := speedups["db"]; sp < 0.85 || sp > 1.15 {
		t.Errorf("reverted service at %.2fx of baseline; want ≈1.0", sp)
	}
	if s.Ctl.Version() < 2 {
		t.Error("revert should have advanced the version counter")
	}
}
