package fleet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/workloads/sqldb"
)

// TestFleetQuarantineReplayRoundTrip records a full quarantine wave —
// tracee faults, retries, jittered backoff, clock reads, rollbacks —
// then re-executes it from the serialized journal with NO live fault
// hook. The replayed wave must reach the same terminal state, version,
// and rollback count, verify every state-hash checkpoint, and re-record
// a byte-identical journal.
func TestFleetQuarantineReplayRoundTrip(t *testing.T) {
	boom := errors.New("injected tracee fault")
	rec := recordQuarantine(t, "svc")
	m := quarantineManager(t, 1, telemetry.NewRegistry(), rec)
	s := addSQLService(t, m, "svc", func(op string, n int) error {
		if n == 5 {
			return boom
		}
		return nil
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != Quarantined {
		t.Fatalf("recorded wave ended %s, want Quarantined (err: %v)", got, s.Err())
	}
	if err := rec.Finish(); err != nil {
		t.Fatalf("recording incomplete: %v", err)
	}
	var recorded bytes.Buffer
	if err := rec.WriteJSONL(&recorded); err != nil {
		t.Fatal(err)
	}

	// Round-trip through the serialized form, exactly like a shipped
	// artifact: the journal is the only carrier of the fault decisions.
	events, err := replay.Load(bytes.NewReader(recorded.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := replay.NewReplayer(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Meta(quarantineMeta("svc")...); err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.NewRegistry()
	m2 := quarantineManager(t, 1, reg2, sess)
	s2 := addSQLService(t, m2, "svc", nil) // no live hook: journal alone
	if _, err := m2.Run(); err != nil {
		t.Fatalf("replayed wave: %v", err)
	}
	if err := sess.Finish(); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}

	if s2.State() != s.State() {
		t.Errorf("replayed wave ended %s, recorded %s", s2.State(), s.State())
	}
	if s2.Ctl.Version() != s.Ctl.Version() {
		t.Errorf("replayed version %d, recorded %d", s2.Ctl.Version(), s.Ctl.Version())
	}
	if s2.Rollbacks() != s.Rollbacks() {
		t.Errorf("replayed rollbacks %d, recorded %d", s2.Rollbacks(), s.Rollbacks())
	}
	if v := reg2.Counter("fleet_quarantines_total").Value(); v != 1 {
		t.Errorf("replayed fleet_quarantines_total = %v, want 1", v)
	}
	var rerecorded bytes.Buffer
	if err := sess.WriteJSONL(&rerecorded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recorded.Bytes(), rerecorded.Bytes()) {
		t.Errorf("re-recorded journal is not byte-identical (%d vs %d bytes)",
			recorded.Len(), rerecorded.Len())
	}
}

// retrySchedule drives one wave whose Building stage fails twice, and
// returns the backoff waits the manager actually slept.
func retrySchedule(t *testing.T, seed int64) []time.Duration {
	t.Helper()
	var sleeps []time.Duration
	attempts := 0
	db, err := sqldb.Build(sqldb.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{
		Workers: 1,
		Robustness: RobustnessConfig{
			MaxRounds:    1,
			MaxRetries:   2,
			RetryBackoff: 4 * time.Millisecond,
		},
		JitterSeed: seed,
		Sleep:      func(d time.Duration) { sleeps = append(sleeps, d) },
		SkipGate:   true,
		Timing:     TimingConfig{ProfileDur: 0.0004, Warm: 0.00015, Window: 0.0002},
		FaultHook: func(s *Service, stage State) error {
			if stage != Building {
				return nil
			}
			attempts++
			if attempts <= 2 {
				return errors.New("transient build fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.AddService(ServicePlan{
		Name: "svc", Workload: db, Input: "read_only", Threads: 1,
		Core: core.Options{NoChargePause: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Proc.RunFor(0.0002)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != Steady {
		t.Fatalf("ended %s, want Steady after retries: %v", got, s.Err())
	}
	return sleeps
}

// TestSeededJitterDeterministic: retry backoff jitter comes from a
// seeded source, so the same seed yields the same backoff schedule and
// a different seed a different one — reproducible without ever being
// synchronized fleet-wide.
func TestSeededJitterDeterministic(t *testing.T) {
	a := retrySchedule(t, 7)
	b := retrySchedule(t, 7)
	c := retrySchedule(t, 8)
	if len(a) != 2 {
		t.Fatalf("expected 2 backoff waits, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same seed diverged: %v vs %v", a, b)
		}
		// The jittered share is strictly added to the doubling base.
		base := 4 * time.Millisecond << i
		if a[i] < base {
			t.Errorf("wait %v below the doubling base %v", a[i], base)
		}
	}
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Errorf("different seeds produced the same schedule: %v", a)
	}

	// The raw source is itself deterministic per seed.
	j1, j2 := seededJitter(41), seededJitter(41)
	for i := 0; i < 8; i++ {
		if v1, v2 := j1(), j2(); v1 != v2 {
			t.Fatalf("seeded jitter draw %d diverged: %v vs %v", i, v1, v2)
		}
	}
}
