// Root-level benchmarks: one per table and figure of the paper's
// evaluation (§VI). Each regenerates its experiment (in Quick mode, so a
// full `go test -bench=.` stays tractable) and reports the headline
// numbers as custom metrics. Run `go run ./cmd/experiments all` for the
// full-scale paper-style output.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/asm"
	"repro/internal/build"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/proc"
)

func quietCfg() experiments.Config {
	return experiments.Config{Quick: true, Out: io.Discard}
}

// runExperiment executes a registered experiment once per iteration.
func runExperiment(b *testing.B, name string) {
	cfg := quietCfg()
	run := experiments.Registry[name]
	if run == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// stepProcess builds the interpreter microbenchmark guest: a hot loop of
// ALU work with a call to a tiny leaf, the shape the simulator spends its
// life in. The loop bound is effectively infinite; the harness caps the
// run by instruction count.
func stepProcess(b *testing.B, opts proc.Options) *proc.Process {
	p := build.NewProgram("stepbench")
	leaf := p.Func("leaf")
	leaf.AddI(isa.R4, isa.R4, 3)
	leaf.Ret()
	m := p.Func("main")
	m.Prologue(16)
	m.MovI(isa.R1, 0)
	m.While(func() { m.CmpI(isa.R1, 1<<40) }, isa.LT, func() {
		for i := 0; i < 5; i++ {
			m.AddI(isa.R2, isa.R2, 1)
			m.XorI(isa.R3, isa.R2, 0x5a)
			m.ShlI(isa.R3, isa.R3, 3)
			m.Add(isa.R4, isa.R4, isa.R3)
		}
		m.Call("leaf")
		m.AddI(isa.R1, isa.R1, 1)
	})
	m.Halt()
	p.SetEntry("main")
	bin, err := p.Assemble(asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pr, err := proc.Load(bin, opts)
	if err != nil {
		b.Fatal(err)
	}
	return pr
}

// BenchmarkStep measures raw interpreter throughput in simulated
// instructions per wall-clock second, for all three engines: "super" is
// the superblock trace engine the scheduler uses by default, "block" the
// basic-block cache it is built on (superblocks disabled), and "legacy"
// the per-instruction Step reference path. scripts/bench.sh turns the
// three into BENCH_proc.json, with legacy as the pre-block-cache
// baseline.
func BenchmarkStep(b *testing.B) {
	b.Run("super", func(b *testing.B) {
		pr := stepProcess(b, proc.Options{})
		b.ResetTimer()
		n := pr.RunUntilHalt(uint64(b.N))
		if n == 0 || pr.Fault() != nil {
			b.Fatalf("run failed: n=%d fault=%v", n, pr.Fault())
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "inst/s")
		if b.N > 10000 && pr.SuperblockStats().Insts == 0 {
			b.Fatal("superblock engine never engaged")
		}
	})
	b.Run("block", func(b *testing.B) {
		pr := stepProcess(b, proc.Options{DisableSuperblocks: true})
		b.ResetTimer()
		n := pr.RunUntilHalt(uint64(b.N))
		if n == 0 || pr.Fault() != nil {
			b.Fatalf("run failed: n=%d fault=%v", n, pr.Fault())
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "inst/s")
	})
	b.Run("legacy", func(b *testing.B) {
		pr := stepProcess(b, proc.Options{})
		t := pr.Threads[0]
		b.ResetTimer()
		var n uint64
		for n < uint64(b.N) && pr.Step(t) {
			n++
		}
		if n == 0 || pr.Fault() != nil {
			b.Fatalf("run failed: n=%d fault=%v", n, pr.Fault())
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "inst/s")
	})
}

// BenchmarkFig1L1iCapacity regenerates Figure 1 (static data).
func BenchmarkFig1L1iCapacity(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig3InputSensitivity regenerates Figure 3: BOLT's sensitivity
// to the training input, with OCOLOS tracking the best profile.
func BenchmarkFig3InputSensitivity(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig5Throughput regenerates Figure 5, the headline comparison,
// and reports the mean speedups as metrics.
func BenchmarkFig5Throughput(b *testing.B) {
	cfg := quietCfg()
	b.ResetTimer()
	var meanOco, meanBolt float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5Rows(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var so, sb float64
		for _, r := range rows {
			so += r.OCOLOS
			sb += r.BoltOr
		}
		meanOco = so / float64(len(rows))
		meanBolt = sb / float64(len(rows))
	}
	b.ReportMetric(meanOco, "mean-ocolos-speedup")
	b.ReportMetric(meanBolt, "mean-bolt-speedup")
}

// BenchmarkFig6ProfileDuration regenerates Figure 6 (speedup vs profiling
// duration).
func BenchmarkFig6ProfileDuration(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Timeline regenerates Figure 7 (throughput before/during/
// after code replacement, with tail latency).
func BenchmarkFig7Timeline(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Microarch regenerates Figure 8 (front-end events per
// kilo-instruction across sqldb inputs).
func BenchmarkFig8Microarch(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9TopDown regenerates Figure 9 (TopDown features classify
// which workloads benefit) and reports the classifier accuracy.
func BenchmarkFig9TopDown(b *testing.B) {
	cfg := quietCfg()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig9Points(cfg)
		if err != nil {
			b.Fatal(err)
		}
		correct := 0
		for _, p := range pts {
			// The controller's simple gate: front-end bound => benefit.
			if (p.FrontEnd > 0.25) == (p.Speedup > 1.05) {
				correct++
			}
		}
		acc = float64(correct) / float64(len(pts))
	}
	b.ReportMetric(acc, "classifier-accuracy")
}

// BenchmarkFig10BAM regenerates Figure 10 (BAM on a from-scratch compiler
// build).
func BenchmarkFig10BAM(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTableICharacterization regenerates Table I.
func BenchmarkTableICharacterization(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkTableIIFixedCosts regenerates Table II.
func BenchmarkTableIIFixedCosts(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkAblations regenerates the §IV-B design-choice ablations.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablate") }

// BenchmarkDBIComparison quantifies §I's DBI-vs-OCOLOS cost argument.
func BenchmarkDBIComparison(b *testing.B) { runExperiment(b, "dbi") }

// BenchmarkRecoveryAnalysis regenerates the §VI-C3 a·s/b recovery-time
// analysis.
func BenchmarkRecoveryAnalysis(b *testing.B) { runExperiment(b, "recover") }

// BenchmarkStaggeredRollout regenerates the §IV-D staggered-replacement
// comparison across a load-balanced tier.
func BenchmarkStaggeredRollout(b *testing.B) { runExperiment(b, "stagger") }

// BenchmarkFleetWave regenerates the §V fleet-deployment wave: a mixed
// service tier optimized concurrently under one manager.
func BenchmarkFleetWave(b *testing.B) { runExperiment(b, "fleet") }
