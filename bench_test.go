// Root-level benchmarks: one per table and figure of the paper's
// evaluation (§VI). Each regenerates its experiment (in Quick mode, so a
// full `go test -bench=.` stays tractable) and reports the headline
// numbers as custom metrics. Run `go run ./cmd/experiments all` for the
// full-scale paper-style output.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func quietCfg() experiments.Config {
	return experiments.Config{Quick: true, Out: io.Discard}
}

// runExperiment executes a registered experiment once per iteration.
func runExperiment(b *testing.B, name string) {
	cfg := quietCfg()
	run := experiments.Registry[name]
	if run == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1L1iCapacity regenerates Figure 1 (static data).
func BenchmarkFig1L1iCapacity(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig3InputSensitivity regenerates Figure 3: BOLT's sensitivity
// to the training input, with OCOLOS tracking the best profile.
func BenchmarkFig3InputSensitivity(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig5Throughput regenerates Figure 5, the headline comparison,
// and reports the mean speedups as metrics.
func BenchmarkFig5Throughput(b *testing.B) {
	cfg := quietCfg()
	b.ResetTimer()
	var meanOco, meanBolt float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5Rows(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var so, sb float64
		for _, r := range rows {
			so += r.OCOLOS
			sb += r.BoltOr
		}
		meanOco = so / float64(len(rows))
		meanBolt = sb / float64(len(rows))
	}
	b.ReportMetric(meanOco, "mean-ocolos-speedup")
	b.ReportMetric(meanBolt, "mean-bolt-speedup")
}

// BenchmarkFig6ProfileDuration regenerates Figure 6 (speedup vs profiling
// duration).
func BenchmarkFig6ProfileDuration(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Timeline regenerates Figure 7 (throughput before/during/
// after code replacement, with tail latency).
func BenchmarkFig7Timeline(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Microarch regenerates Figure 8 (front-end events per
// kilo-instruction across sqldb inputs).
func BenchmarkFig8Microarch(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9TopDown regenerates Figure 9 (TopDown features classify
// which workloads benefit) and reports the classifier accuracy.
func BenchmarkFig9TopDown(b *testing.B) {
	cfg := quietCfg()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig9Points(cfg)
		if err != nil {
			b.Fatal(err)
		}
		correct := 0
		for _, p := range pts {
			// The controller's simple gate: front-end bound => benefit.
			if (p.FrontEnd > 0.25) == (p.Speedup > 1.05) {
				correct++
			}
		}
		acc = float64(correct) / float64(len(pts))
	}
	b.ReportMetric(acc, "classifier-accuracy")
}

// BenchmarkFig10BAM regenerates Figure 10 (BAM on a from-scratch compiler
// build).
func BenchmarkFig10BAM(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTableICharacterization regenerates Table I.
func BenchmarkTableICharacterization(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkTableIIFixedCosts regenerates Table II.
func BenchmarkTableIIFixedCosts(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkAblations regenerates the §IV-B design-choice ablations.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablate") }

// BenchmarkDBIComparison quantifies §I's DBI-vs-OCOLOS cost argument.
func BenchmarkDBIComparison(b *testing.B) { runExperiment(b, "dbi") }

// BenchmarkRecoveryAnalysis regenerates the §VI-C3 a·s/b recovery-time
// analysis.
func BenchmarkRecoveryAnalysis(b *testing.B) { runExperiment(b, "recover") }

// BenchmarkStaggeredRollout regenerates the §IV-D staggered-replacement
// comparison across a load-balanced tier.
func BenchmarkStaggeredRollout(b *testing.B) { runExperiment(b, "stagger") }

// BenchmarkFleetWave regenerates the §V fleet-deployment wave: a mixed
// service tier optimized concurrently under one manager.
func BenchmarkFleetWave(b *testing.B) { runExperiment(b, "fleet") }
