#!/usr/bin/env sh
# Tier-1 gate: vet, build, and test (with the race detector) the whole
# module. Every PR must pass this before merge; see docs/testing.md.
set -eu

cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Replay-based tests (fault sweep, fleet quarantine) dump the journal of
# any failing run here; upload_journals preserves them outside the
# cleaned-up tmpdir so a red CI run ships its own repros
# (docs/replay.md).
export OCOLOS_TEST_ARTIFACTS="${OCOLOS_TEST_ARTIFACTS:-$tmpdir/artifacts}"
mkdir -p "$OCOLOS_TEST_ARTIFACTS"
upload_journals() {
    if ls "$OCOLOS_TEST_ARTIFACTS"/*.jsonl >/dev/null 2>&1; then
        keep=$(mktemp -d "${TMPDIR:-/tmp}/ocolos-repro.XXXXXX")
        cp "$OCOLOS_TEST_ARTIFACTS"/*.jsonl "$keep/"
        echo "repro journals preserved in $keep:"
        ls "$keep"
    fi
}

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The fleet manager and telemetry registry are the concurrency-heavy
# packages: run them twice more under the race detector to shake out
# scheduling-dependent interleavings (-short skips the full-scale
# single-service runs already covered above).
echo "== go test -race -count=2 -short ./internal/fleet ./internal/telemetry"
go test -race -count=2 -short ./internal/fleet ./internal/telemetry

# Transactional-replacement gates (see docs/robustness.md): the sampled
# fault sweep proves every injected tracee fault rolls back
# bit-identically to the baseline (-short samples indices; the full
# sweep already ran in the ./... pass), and the quarantine tests drive
# tracee-level replace faults through a concurrent fleet wave under the
# race detector — no service may end Failed-wedged.
echo "== go test -short -run TestFaultSweep ./internal/diffcheck"
go test -short -run TestFaultSweep ./internal/diffcheck || { upload_journals; exit 1; }
echo "== go test -race -run 'TestTraceeFault|TestSecondRoundQuarantine|TestMidWaveFaultIsolation' ./internal/fleet"
go test -race -run 'TestTraceeFault|TestSecondRoundQuarantine|TestMidWaveFaultIsolation' ./internal/fleet || { upload_journals; exit 1; }

# On-stack-replacement gates (see docs/robustness.md): the loop-parked
# loopsim scenario must map frames between layouts, every injected fault
# across its exhaustive sweep must roll back the OSR rewrites
# bit-identically, and the NoOSR ablation must still converge to the
# same baseline. A red run preserves its repro journals like the sweep
# above.
echo "== go test -race -run 'TestOSRFaultSweep|TestOSRAblationStillEquivalent' ./internal/diffcheck"
go test -race -run 'TestOSRFaultSweep|TestOSRAblationStillEquivalent' ./internal/diffcheck || { upload_journals; exit 1; }

# Replace-cost smoke: the small-scale OSR ablation benchmark must run
# and report its OSR outcomes, so scripts/bench.sh works when needed.
echo "== replace bench smoke: loopsim OSR ablation, small scale"
REPLACE_BENCH_OUT="$tmpdir/BENCH_replace_smoke.json" REPLACE_BENCH_SCALE=small \
    go test -run TestReplaceBench -count 1 ./internal/diffcheck || { upload_journals; exit 1; }
grep -q '"osr_frames_mapped"' "$tmpdir/BENCH_replace_smoke.json" ||
    { cat "$tmpdir/BENCH_replace_smoke.json"; echo "replace smoke wrote no OSR stats"; exit 1; }

# Sharded-wave + layout-cache gates (see docs/fleet.md): the
# single-flight cache and the sharded dispatcher are the fleet's two
# concurrency hot spots, so both run explicitly under the race
# detector. The 32-replica homogeneous smoke must serve >90% of its
# lookups from the cache — the "optimize once, deploy everywhere"
# contract — and the test itself fails below that bar.
echo "== go test -race -run 'TestSingleFlight' ./internal/layout"
go test -race -run 'TestSingleFlight' ./internal/layout
echo "== sharded-wave cache smoke: 32 homogeneous replicas, -race"
FLEET_BENCH_OUT="$tmpdir/BENCH_fleet_smoke.json" FLEET_BENCH_SERVICES=32 \
    FLEET_BENCH_WORKLOADS=1 FLEET_BENCH_WORKERS=4 FLEET_BENCH_SHARDS=4 \
    go test -race -run TestFleetWaveBench -count 1 ./internal/fleet || { upload_journals; exit 1; }
grep -q '"cache_hit_rate"' "$tmpdir/BENCH_fleet_smoke.json" ||
    { cat "$tmpdir/BENCH_fleet_smoke.json"; echo "fleet smoke wrote no cache stats"; exit 1; }

# Record/replay smoke (see docs/replay.md): a two-round kvcache session
# is recorded, then re-executed from the journal alone — every
# state-hash checkpoint must verify and the re-recorded journal must be
# byte-identical.
echo "== record/replay smoke"
go build -o "$tmpdir/ocolos-run" ./cmd/ocolos-run
"$tmpdir/ocolos-run" -workload kvcache -input set10_get90 -rounds 2 \
    -record "$tmpdir/session.jsonl" >/dev/null
"$tmpdir/ocolos-run" -replay "$tmpdir/session.jsonl" >"$tmpdir/replay.log" 2>&1 ||
    { cat "$tmpdir/replay.log"; echo "record/replay smoke failed"; exit 1; }
grep -q 'replay OK' "$tmpdir/replay.log" ||
    { cat "$tmpdir/replay.log"; echo "replay did not verify"; exit 1; }
echo "record/replay smoke OK ($(wc -l < "$tmpdir/session.jsonl") events)"

# Both fast execution tiers — the superblock trace engine and the
# block cache under it — must stay cycle-exact with the Step reference
# interpreter, and the superblock run must actually form and execute
# traces (see docs/perf.md): run the golden equivalence gate explicitly
# so an engine regression names itself in the CI log.
echo "== go test -run TestCycleExactEngineEquivalence ./internal/diffcheck"
go test -run TestCycleExactEngineEquivalence ./internal/diffcheck

# Bench smoke: one iteration of the throughput benchmark, to catch a
# broken benchmark harness before scripts/bench.sh is needed for real.
echo "== go test -bench BenchmarkStep -benchtime 1x"
go test -run '^$' -bench BenchmarkStep -benchtime 1x .

# Superblock perf gate: the trace engine must not be slower than the
# block cache it is built on. Best of 2 one-second runs per tier, with a
# 0.9 factor so shared-machine noise (±20% run to run) cannot flake the
# gate while a real regression — traces falling back to per-op paths
# everywhere — still fails it.
echo "== superblock vs block bench smoke"
smoke=$(go test -run '^$' -bench 'BenchmarkStep/(super|block)' -benchtime 1s -count 2 .)
echo "$smoke"
echo "$smoke" | awk '
    /^BenchmarkStep\/super/ {if ($(NF-1)+0 > s) s = $(NF-1)+0}
    /^BenchmarkStep\/block/ {if ($(NF-1)+0 > b) b = $(NF-1)+0}
    END {
        if (s == 0 || b == 0) { print "bench smoke: missing tier output"; exit 1 }
        printf "super %.0f inst/s vs block %.0f inst/s (%.2fx)\n", s, b, s / b
        if (s < 0.9 * b) { print "superblock engine slower than block engine"; exit 1 }
    }'

# Control-plane smoke (see docs/observability.md): boot the real fleetd
# with an ephemeral-port HTTP control plane and a minimal wave, scrape
# /healthz and /metrics while it runs, then shut it down with SIGTERM
# and require a clean exit.
echo "== fleetd -serve smoke"
go build -o "$tmpdir/fleetd" ./cmd/fleetd
"$tmpdir/fleetd" -serve 127.0.0.1:0 -replicas 1 -rounds 1 >"$tmpdir/log" 2>&1 &
fleetd_pid=$!
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's,.*serving control plane on http://,,p' "$tmpdir/log")
    [ -n "$addr" ] && break
    kill -0 "$fleetd_pid" 2>/dev/null || { cat "$tmpdir/log"; echo "fleetd exited before serving"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$tmpdir/log"; echo "fleetd never printed its address"; exit 1; }
curl -sf "http://$addr/healthz" | grep -q '^ok$' || { echo "/healthz failed"; exit 1; }
curl -sf "http://$addr/metrics" >"$tmpdir/metrics" || { echo "/metrics failed"; exit 1; }
grep -q '^fleet_services ' "$tmpdir/metrics" || { cat "$tmpdir/metrics"; echo "fleet_services missing from /metrics"; exit 1; }
curl -sf "http://$addr/services" >/dev/null || { echo "/services failed"; exit 1; }
curl -sf "http://$addr/cache" | grep -q '"enabled": true' || { echo "/cache failed"; exit 1; }
kill -TERM "$fleetd_pid"
wait "$fleetd_pid" || { cat "$tmpdir/log"; echo "fleetd did not exit cleanly"; exit 1; }
echo "control plane smoke OK ($addr)"

# Drift smoke (see docs/profiling.md): boot fleetd with streaming
# profiles and the drift watch on, run the initial wave, then push an
# external LBR batch through POST /profile whose hot set diverges from
# the layout's build profile. The watch must score the divergence, fire
# a re-optimization round, and surface it as a reopt count on
# /services — the whole streamed-ingest → drift → re-opt path, over the
# real HTTP control plane.
echo "== fleetd drift smoke"
"$tmpdir/fleetd" -serve 127.0.0.1:0 -drift -drift-every 100ms -replicas 1 -rounds 1 \
    >"$tmpdir/driftlog" 2>&1 &
drift_pid=$!
for _ in $(seq 1 300); do
    grep -q 'drift watch scanning' "$tmpdir/driftlog" && break
    kill -0 "$drift_pid" 2>/dev/null || { cat "$tmpdir/driftlog"; echo "fleetd exited before the drift watch"; exit 1; }
    sleep 0.1
done
grep -q 'drift watch scanning' "$tmpdir/driftlog" ||
    { cat "$tmpdir/driftlog"; echo "drift watch never started"; exit 1; }
addr=$(sed -n 's,.*serving control plane on http://,,p' "$tmpdir/driftlog")

# The live store tells us a genuinely hot edge of the service's current
# layout and the stream clock; concentrating the pushed profile on that
# one edge moves most of the profile mass (high total-variation score)
# while keeping every address resolvable by perf2bolt.
svc_path='sqldb/read_only%230' # sqldb/read_only#0, URL-encoded
doc=$(curl -sf "http://$addr/profile?service=$svc_path&top=5") ||
    { cat "$tmpdir/driftlog"; echo "GET /profile failed"; exit 1; }
from=$(echo "$doc" | sed -n 's/.*"from": \([0-9][0-9]*\).*/\1/p' | head -1)
to=$(echo "$doc" | sed -n 's/.*"to": \([0-9][0-9]*\).*/\1/p' | head -1)
now=$(echo "$doc" | sed -n 's/.*"now": \([0-9.e+-]*\),*/\1/p' | head -1)
[ -n "$from" ] && [ -n "$to" ] && [ -n "$now" ] ||
    { echo "$doc"; echo "could not parse /profile status"; exit 1; }
body=$(awk -v f="$from" -v t="$to" -v n="$now" 'BEGIN {
    printf "{\"service\": \"sqldb/read_only#0\", \"samples\": [{\"at\": %.6f, \"records\": [", n + 0.0025
    for (i = 0; i < 64; i++) printf "%s{\"from\": %s, \"to\": %s}", (i ? "," : ""), f, t
    printf "]}]}"
}')
curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/profile" >/dev/null ||
    { cat "$tmpdir/driftlog"; echo "POST /profile failed"; exit 1; }

reopted=
for _ in $(seq 1 300); do
    if curl -sf "http://$addr/services" | grep -q '"reopts": [1-9]'; then
        reopted=1
        break
    fi
    kill -0 "$drift_pid" 2>/dev/null || { cat "$tmpdir/driftlog"; echo "fleetd died mid-drift-watch"; exit 1; }
    sleep 0.1
done
[ -n "$reopted" ] ||
    { cat "$tmpdir/driftlog"; curl -sf "http://$addr/services"; echo "drift push never produced a re-opt round"; exit 1; }
kill -TERM "$drift_pid"
wait "$drift_pid" || { cat "$tmpdir/driftlog"; echo "fleetd did not exit cleanly after the drift watch"; exit 1; }
echo "drift smoke OK"

echo "CI OK"
