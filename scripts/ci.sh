#!/usr/bin/env sh
# Tier-1 gate: vet, build, and test (with the race detector) the whole
# module. Every PR must pass this before merge; see docs/testing.md.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The fleet manager and telemetry registry are the concurrency-heavy
# packages: run them twice more under the race detector to shake out
# scheduling-dependent interleavings (-short skips the full-scale
# single-service runs already covered above).
echo "== go test -race -count=2 -short ./internal/fleet ./internal/telemetry"
go test -race -count=2 -short ./internal/fleet ./internal/telemetry

# Transactional-replacement gates (see docs/robustness.md): the sampled
# fault sweep proves every injected tracee fault rolls back
# bit-identically to the baseline (-short samples indices; the full
# sweep already ran in the ./... pass), and the quarantine tests drive
# tracee-level replace faults through a concurrent fleet wave under the
# race detector — no service may end Failed-wedged.
echo "== go test -short -run TestFaultSweep ./internal/diffcheck"
go test -short -run TestFaultSweep ./internal/diffcheck
echo "== go test -race -run 'TestTraceeFault|TestSecondRoundQuarantine|TestMidWaveFaultIsolation' ./internal/fleet"
go test -race -run 'TestTraceeFault|TestSecondRoundQuarantine|TestMidWaveFaultIsolation' ./internal/fleet

# The block-cache execution engine must stay cycle-exact with the Step
# reference interpreter (see docs/perf.md): run the golden equivalence
# gate explicitly so an engine regression names itself in the CI log.
echo "== go test -run TestCycleExactEngineEquivalence ./internal/diffcheck"
go test -run TestCycleExactEngineEquivalence ./internal/diffcheck

# Bench smoke: one iteration of the throughput benchmark, to catch a
# broken benchmark harness before scripts/bench.sh is needed for real.
echo "== go test -bench BenchmarkStep -benchtime 1x"
go test -run '^$' -bench BenchmarkStep -benchtime 1x .

echo "CI OK"
