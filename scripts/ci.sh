#!/usr/bin/env sh
# Tier-1 gate: vet, build, and test (with the race detector) the whole
# module. Every PR must pass this before merge; see docs/testing.md.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The fleet manager and telemetry registry are the concurrency-heavy
# packages: run them twice more under the race detector to shake out
# scheduling-dependent interleavings (-short skips the full-scale
# single-service runs already covered above).
echo "== go test -race -count=2 -short ./internal/fleet ./internal/telemetry"
go test -race -count=2 -short ./internal/fleet ./internal/telemetry

echo "CI OK"
