#!/usr/bin/env sh
# Tier-1 gate: vet, build, and test (with the race detector) the whole
# module. Every PR must pass this before merge; see docs/testing.md.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "CI OK"
