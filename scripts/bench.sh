#!/usr/bin/env sh
# Interpreter-throughput benchmark runner: runs BenchmarkStep for both
# execution engines and writes BENCH_proc.json with the block-cache
# engine's simulated-instructions-per-second next to the legacy
# per-instruction baseline measured in the same run. The benchmark is
# invoked COUNT separate times — each invocation measures both engines
# back to back, so the pair shares machine-noise conditions — and the
# best run per engine is kept: wall-clock noise on shared machines only
# ever slows a run down. See docs/perf.md.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-8}"
OUT="${OUT:-BENCH_proc.json}"

raw=""
i=1
while [ "$i" -le "$COUNT" ]; do
    echo "== run $i/$COUNT: go test -bench BenchmarkStep -benchtime $BENCHTIME"
    run=$(go test -run '^$' -bench 'BenchmarkStep' -benchtime "$BENCHTIME" -count 1 .)
    echo "$run"
    raw="$raw
$run"
    i=$((i + 1))
done

# Benchmark lines end with: <ns/op> ns/op <inst/s> inst/s
block=$(echo "$raw" | awk '/^BenchmarkStep\/block/  {if ($(NF-1)+0 > best) best = $(NF-1)+0} END {print best}')
legacy=$(echo "$raw" | awk '/^BenchmarkStep\/legacy/ {if ($(NF-1)+0 > best) best = $(NF-1)+0} END {print best}')

if [ -z "$block" ] || [ -z "$legacy" ] || [ "$block" = 0 ] || [ "$legacy" = 0 ]; then
    echo "bench.sh: failed to parse benchmark output" >&2
    exit 1
fi

speedup=$(awk "BEGIN {printf \"%.2f\", $block / $legacy}")

cat > "$OUT" <<EOF
{
  "benchmark": "BenchmarkStep",
  "benchtime": "$BENCHTIME",
  "count": $COUNT,
  "baseline_legacy_ips": $legacy,
  "block_engine_ips": $block,
  "speedup": $speedup
}
EOF

echo "== $OUT"
cat "$OUT"
