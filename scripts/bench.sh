#!/usr/bin/env sh
# Benchmark runner, two sections:
#
# 1. Interpreter throughput: runs BenchmarkStep for all three execution
#    tiers — the superblock trace engine, the basic-block cache it sits
#    on, and the legacy per-instruction baseline — and writes
#    BENCH_proc.json with each tier's simulated-instructions-per-second
#    plus the tier-over-tier speedups, all measured in the same run. The
#    benchmark is invoked COUNT separate times — each invocation
#    measures the tiers back to back, so they share machine-noise
#    conditions — and the best run per tier is kept: wall-clock noise on
#    shared machines only ever slows a run down. See docs/perf.md.
#
# 2. Fleet wave: drives FLEET_SERVICES (default 1000) mixed-workload
#    replicas through one sharded optimization wave under the race
#    detector and writes BENCH_fleet.json — wave wall time, BOLT
#    invocations, and the layout-cache hit rate that keeps invocations
#    far below the service count. See docs/fleet.md. Skip with
#    SKIP_FLEET=1 (the interpreter section is the fast one).
#
# 3. Replacement cost: runs the loopsim service (whose serve loop never
#    returns) through REPLACE_ROUNDS optimization rounds with on-stack
#    replacement on and off, and writes BENCH_replace.json — per-arm
#    pause time, stack-copy traffic, OSR frame outcomes, and the share
#    of main's execution still parked on the original image (1.0 means
#    the optimized layout never took effect). See docs/robustness.md.
#    Skip with SKIP_REPLACE=1.
#
# 4. Drift re-convergence: runs the phase-shifting multi-tenant cache
#    through two hot-tenant turns with the drift detector on and off,
#    and writes BENCH_drift.json — per-turn stale and recovered
#    throughput, the detector's divergence score, and the simulated
#    time each re-convergence took. See docs/profiling.md. Skip with
#    SKIP_DRIFT=1.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-8}"
OUT="${OUT:-BENCH_proc.json}"
FLEET_OUT="${FLEET_OUT:-BENCH_fleet.json}"
FLEET_SERVICES="${FLEET_SERVICES:-1000}"
REPLACE_OUT="${REPLACE_OUT:-BENCH_replace.json}"
REPLACE_ROUNDS="${REPLACE_ROUNDS:-3}"
DRIFT_OUT="${DRIFT_OUT:-BENCH_drift.json}"

raw=""
i=1
while [ "$i" -le "$COUNT" ]; do
    echo "== run $i/$COUNT: go test -bench BenchmarkStep -benchtime $BENCHTIME"
    run=$(go test -run '^$' -bench 'BenchmarkStep' -benchtime "$BENCHTIME" -count 1 .)
    echo "$run"
    raw="$raw
$run"
    i=$((i + 1))
done

# Benchmark lines end with: <ns/op> ns/op <inst/s> inst/s
super=$(echo "$raw" | awk '/^BenchmarkStep\/super/  {if ($(NF-1)+0 > best) best = $(NF-1)+0} END {print best}')
block=$(echo "$raw" | awk '/^BenchmarkStep\/block/  {if ($(NF-1)+0 > best) best = $(NF-1)+0} END {print best}')
legacy=$(echo "$raw" | awk '/^BenchmarkStep\/legacy/ {if ($(NF-1)+0 > best) best = $(NF-1)+0} END {print best}')

if [ -z "$super" ] || [ -z "$block" ] || [ -z "$legacy" ] ||
    [ "$super" = 0 ] || [ "$block" = 0 ] || [ "$legacy" = 0 ]; then
    echo "bench.sh: failed to parse benchmark output" >&2
    exit 1
fi

speedup=$(awk "BEGIN {printf \"%.2f\", $block / $legacy}")
super_vs_block=$(awk "BEGIN {printf \"%.2f\", $super / $block}")
super_vs_legacy=$(awk "BEGIN {printf \"%.2f\", $super / $legacy}")

cat > "$OUT" <<EOF
{
  "benchmark": "BenchmarkStep",
  "benchtime": "$BENCHTIME",
  "count": $COUNT,
  "baseline_legacy_ips": $legacy,
  "block_engine_ips": $block,
  "superblock_ips": $super,
  "speedup": $speedup,
  "superblock_speedup_vs_block": $super_vs_block,
  "superblock_speedup_vs_legacy": $super_vs_legacy
}
EOF

echo "== $OUT"
cat "$OUT"

if [ "${SKIP_FLEET:-0}" != 1 ]; then
    echo "== fleet wave benchmark: $FLEET_SERVICES services, -race"
    FLEET_BENCH_OUT="$FLEET_OUT" FLEET_BENCH_SERVICES="$FLEET_SERVICES" \
        go test -race -run TestFleetWaveBench -count 1 -timeout 60m ./internal/fleet
    echo "== $FLEET_OUT"
    cat "$FLEET_OUT"
fi

if [ "${SKIP_REPLACE:-0}" != 1 ]; then
    echo "== replacement benchmark: loopsim OSR ablation, $REPLACE_ROUNDS rounds"
    REPLACE_BENCH_OUT="$REPLACE_OUT" REPLACE_BENCH_ROUNDS="$REPLACE_ROUNDS" \
        go test -run TestReplaceBench -count 1 ./internal/diffcheck
    echo "== $REPLACE_OUT"
    cat "$REPLACE_OUT"
fi

if [ "${SKIP_DRIFT:-0}" != 1 ]; then
    echo "== drift benchmark: phase-shifting mt-kvcache, drift vs no-drift ablation"
    DRIFT_BENCH_OUT="$DRIFT_OUT" \
        go test -run TestDriftBench -count 1 -timeout 30m ./internal/experiments
    echo "== $DRIFT_OUT"
    cat "$DRIFT_OUT"
fi
