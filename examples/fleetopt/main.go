// Fleetopt: OCOLOS as the actuator of a fleet-wide profiling system.
//
// §V of the paper notes that data centers already run continuous fleet
// profilers (Google-Wide Profiling); OCOLOS slots in behind them. This
// example manages four services, scans their TopDown counters (the
// DMon-style first stage), optimizes only the ones the Figure 9 criterion
// selects, and reports per-service and fleet-wide results — including the
// memory-bound service the gate correctly refuses to touch.
//
// Run with: go run ./examples/fleetopt
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/sqldb"
)

func main() {
	db, err := sqldb.Build(sqldb.Full())
	if err != nil {
		log.Fatal(err)
	}
	doc, err := docdb.Build(docdb.Full())
	if err != nil {
		log.Fatal(err)
	}
	kv, err := kvcache.Build(kvcache.Full())
	if err != nil {
		log.Fatal(err)
	}

	var services []*fleet.Service
	for _, s := range []struct {
		name, input string
		build       func() (*fleet.Service, error)
	}{
		{"sqldb/read_only", "", func() (*fleet.Service, error) {
			return fleet.NewService("sqldb/read_only", db, "read_only", 4, core.Options{})
		}},
		{"docdb/read_update", "", func() (*fleet.Service, error) {
			return fleet.NewService("docdb/read_update", doc, "read_update", 4, core.Options{})
		}},
		{"docdb/scan95", "", func() (*fleet.Service, error) {
			return fleet.NewService("docdb/scan95", doc, "scan95_insert5", 4, core.Options{})
		}},
		{"kvcache/get90", "", func() (*fleet.Service, error) {
			return fleet.NewService("kvcache/get90", kv, "set10_get90", 4, core.Options{})
		}},
	} {
		svc, err := s.build()
		if err != nil {
			log.Fatal(err)
		}
		services = append(services, svc)
	}

	m := &fleet.Manager{Services: services}
	for _, s := range m.Services {
		s.Proc.RunFor(0.002) // services have been up for a while
	}

	fmt.Println("fleet scan (TopDown first stage):")
	scan := m.Scan(0.002)
	for _, r := range scan {
		verdict := "skip"
		if r.Optimize {
			verdict = "OPTIMIZE"
		}
		fmt.Printf("  %-20s FE %5.1f%%  retiring %5.1f%%  -> %s\n",
			r.Service.Name, r.TopDown.FrontEnd*100, r.TopDown.Retiring*100, verdict)
	}

	speedups, err := m.OptimizeCandidates(scan, 0.004, 0.002, 0.003, 1.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after one optimization wave (services below 1.02x are reverted):")
	for _, s := range m.Services {
		fmt.Printf("  %-20s %.2fx\n", s.Name, speedups[s.Name])
	}
}
