// Fleetopt: OCOLOS as the actuator of a fleet-wide profiling system.
//
// §V of the paper notes that data centers already run continuous fleet
// profilers (Google-Wide Profiling); OCOLOS slots in behind them. This
// example manages four services under a fleet.Manager: the TopDown scan
// (the DMon-style first stage) selects the front-end-bound ones, the
// worker pool drives each selected service through the optimization
// lifecycle concurrently — with replacement pauses staggered by the
// global semaphore — and services below the regression bar are reverted
// to C0. The memory-bound cache is correctly refused by the gate.
//
// Run with: go run ./examples/fleetopt
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/fleet"
	"repro/internal/telemetry"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/sqldb"
)

func main() {
	db, err := sqldb.Build(sqldb.Full())
	if err != nil {
		log.Fatal(err)
	}
	doc, err := docdb.Build(docdb.Full())
	if err != nil {
		log.Fatal(err)
	}
	kv, err := kvcache.Build(kvcache.Full())
	if err != nil {
		log.Fatal(err)
	}

	metrics := telemetry.NewRegistry()
	m, err := fleet.NewManager(fleet.Config{
		Workers:   2,
		MaxPauses: 1,
		Robustness: fleet.RobustnessConfig{
			MaxRounds:   1,
			RevertBelow: 1.02,
		},
		Metrics: metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	plans := []fleet.ServicePlan{
		{Name: "sqldb/read_only", Workload: db, Input: "read_only", Threads: 4},
		{Name: "docdb/read_update", Workload: doc, Input: "read_update", Threads: 4},
		{Name: "docdb/scan95", Workload: doc, Input: "scan95_insert5", Threads: 4},
		{Name: "kvcache/get90", Workload: kv, Input: "set10_get90", Threads: 4},
	}
	for _, plan := range plans {
		svc, err := m.AddService(plan)
		if err != nil {
			log.Fatal(err)
		}
		svc.Proc.RunFor(0.002) // services have been up for a while
	}

	fmt.Println("fleet scan (TopDown first stage):")
	scan := m.Scan(fleet.ScanOptions{Window: 0.002})
	for _, r := range scan {
		verdict := "skip"
		if r.Optimize {
			verdict = "OPTIMIZE"
		}
		fmt.Printf("  %-20s FE %5.1f%%  retiring %5.1f%%  -> %s\n",
			r.Service.Name, r.TopDown.FrontEnd*100, r.TopDown.Retiring*100, verdict)
	}

	m.Optimize(scan, fleet.WaveOptions{})
	fmt.Println("\nafter one optimization wave (services below 1.02x are reverted):")
	m.Report().Write(os.Stdout)

	fmt.Println("\nfleet metrics:")
	metrics.WriteReport(os.Stdout)
}
