// Quickstart: optimize a running database server online with OCOLOS.
//
// This example builds the sqldb workload (a MySQL-like server compiled to
// the simulated ISA), serves a read-only mix, then attaches the OCOLOS
// controller: profile the live process with LBR sampling, run the
// BOLT-style optimizer in the background, pause, inject the optimized
// code, patch the code pointers, resume — and measure the speedup.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/workloads/sqldb"
	"repro/internal/workloads/wl"
)

func main() {
	// 1. Build the server binary (with the -fno-jump-tables analog OCOLOS
	// requires) and start it with a Sysbench-style load generator.
	w, err := sqldb.Build(sqldb.Full())
	if err != nil {
		log.Fatal(err)
	}
	driver, err := w.NewDriver("read_only", 4)
	if err != nil {
		log.Fatal(err)
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: 4, Handler: driver})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("serving:", w.Binary)

	// 2. Attach OCOLOS. The function-pointer-creation hook (the
	// wrapFuncPtrCreation analog) is installed immediately.
	ctl, err := core.New(p, w.Binary, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Measure the original steady state.
	p.RunFor(0.003) // simulated seconds of warm-up
	before := wl.Measure(p, driver, 0.004)
	fmt.Printf("original:  %10.0f requests/s\n", before)

	// 4. One OCOLOS round: profile 5 simulated ms, optimize, replace.
	rr, err := ctl.OptimizeRound(0.005)
	if err != nil {
		log.Fatal(err)
	}
	rs, bs := rr.Replace, rr.Build
	fmt.Printf("replaced:  injected %d KiB at C1, patched %d call sites + %d vtable slots\n",
		rs.BytesInjected/1024, rs.CallSitesPatched, rs.VTableSlotsPatched)
	fmt.Printf("           pause %.2f ms (simulated), pipeline %.0f+%.0f ms (host perf2bolt+bolt)\n",
		rs.PauseSeconds*1e3, bs.Perf2BoltSeconds*1e3, bs.BoltSeconds*1e3)

	// 5. Measure the optimized steady state.
	p.RunFor(0.003)
	after := wl.Measure(p, driver, 0.004)
	if err := p.Fault(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized: %10.0f requests/s  (%.2fx)\n", after, after/before)
}
