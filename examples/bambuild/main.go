// Bambuild: accelerate a parallel batch build with BAM (§V-A).
//
// A from-scratch "compiler build" runs 96 translation units over 8 build
// slots. BAM intercepts the compiler's exec calls: the first few
// invocations run under perf, then perf2bolt + the BOLT-style optimizer
// run in a background process, and every later invocation transparently
// uses the optimized compiler — no stop-the-world, no changes to the
// build system.
//
// Run with: go run ./examples/bambuild
package main

import (
	"fmt"
	"log"

	"repro/internal/bam"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/workloads/compilersim"
)

func main() {
	w, err := compilersim.Build(compilersim.Full())
	if err != nil {
		log.Fatal(err)
	}
	const (
		njobs = 96
		slots = 8
	)

	tu := 0
	run := func(bin *obj.Binary, profile bool) (bam.JobResult, error) {
		input := fmt.Sprintf("tu:%d", tu)
		tu++
		d, err := w.NewDriver(input, 1)
		if err != nil {
			return bam.JobResult{}, err
		}
		p, err := proc.Load(bin, proc.Options{Threads: 1, Handler: d})
		if err != nil {
			return bam.JobResult{}, err
		}
		var rec *perf.Recorder
		if profile {
			rec = perf.Attach(p, perf.RecorderOptions{PeriodCycles: 20_000})
		}
		p.RunUntilHalt(0)
		if err := p.Fault(); err != nil {
			return bam.JobResult{}, err
		}
		jr := bam.JobResult{Seconds: p.Seconds()}
		if rec != nil {
			jr.Raw = rec.Stop()
		}
		return jr, nil
	}

	// Baseline build: no BAM.
	base, err := bam.RunBaseline(w.Binary, slots, njobs, run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original build: %d TUs, -j%d: %.3f simulated ms\n",
		njobs, slots, base.MakespanSeconds*1e3)

	// BAM: profile the first 4 compiler executions.
	tu = 0
	one, _ := run(w.Binary, false)
	tu = 0
	res, err := bam.Run(bam.Config{
		Target:          w.Binary,
		ProfileRuns:     4,
		Slots:           slots,
		PipelineSeconds: 4 * one.Seconds, // background perf2bolt+BOLT
	}, njobs, run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BAM build:      %.3f simulated ms (%.2fx)\n",
		res.MakespanSeconds*1e3, base.MakespanSeconds/res.MakespanSeconds)
	fmt.Printf("  %d invocations profiled, optimized binary ready at %.3f ms, used by %d/%d invocations\n",
		res.JobsProfiled, res.SwitchSeconds*1e3, res.JobsOptimized, res.JobsTotal)
}
