// Inputshift: continuous optimization across a workload phase change.
//
// The paper's §IV-C motivates continuous optimization with input shifts
// (program phases, working-hours vs at-home traffic). This example serves
// sqldb with a read-only mix and optimizes for it (C1); then the load
// generator switches to a write-heavy mix — C1's layout is now trained on
// the wrong input — and OCOLOS re-profiles the *running optimized*
// process and replaces C1 with C2, garbage-collecting the dead C1 code.
// This exercises the paths the real system could not evaluate because
// BOLT refuses re-bolted binaries (our optimizer implements the paper's
// planned extension behind AllowReBolt).
//
// Run with: go run ./examples/inputshift
package main

import (
	"fmt"
	"log"

	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/workloads/sqldb"
	"repro/internal/workloads/wl"
)

func main() {
	w, err := sqldb.Build(sqldb.Full())
	if err != nil {
		log.Fatal(err)
	}
	driver, err := w.NewDriver("read_only", 4)
	if err != nil {
		log.Fatal(err)
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: 4, Handler: driver})
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := core.New(p, w.Binary, core.Options{
		Bolt: bolt.Options{AllowReBolt: true}, // enable C_i → C_{i+1}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: read-only traffic, optimize for it.
	p.RunFor(0.003)
	readBase := wl.Measure(p, driver, 0.003)
	if _, err := ctl.OptimizeRound(0.004); err != nil {
		log.Fatal(err)
	}
	p.RunFor(0.003)
	readOpt := wl.Measure(p, driver, 0.003)
	fmt.Printf("read_only:  %9.0f -> %9.0f req/s (%.2fx) with C1\n",
		readBase, readOpt, readOpt/readBase)

	// Phase 2: traffic shifts to write_only. C1 is trained on the wrong
	// input now. Swap the generator on the live driver: same process,
	// new request mix.
	wd, err := w.NewDriver("write_only", 4)
	if err != nil {
		log.Fatal(err)
	}
	driver.SetGenerator(wd.Generator())
	p.RunFor(0.003)
	writeOnC1 := wl.Measure(p, driver, 0.003)
	fmt.Printf("write_only: %9.0f req/s on C1 (layout trained for reads)\n", writeOnC1)

	// Re-profile the running process (profiles now reflect writes) and
	// replace C1 with C2. The dead C1 region is garbage-collected.
	rr, err := ctl.OptimizeRound(0.004)
	if err != nil {
		log.Fatal(err)
	}
	rs := rr.Replace
	p.RunFor(0.003)
	writeOnC2 := wl.Measure(p, driver, 0.003)
	if err := p.Fault(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write_only: %9.0f req/s on C2 (%.2fx vs C1; %d stack-live funcs copied, %d KiB GC'd)\n",
		writeOnC2, writeOnC2/writeOnC1, rs.StackFuncsCopied, rs.BytesFreed/1024)
	fmt.Printf("code versions: now running C%d; C0 intact, C1 collected\n", ctl.Version())
}
