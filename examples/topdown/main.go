// Topdown: decide which services are worth optimizing before touching
// them (§V "Profiling", §VI-C4 / Figure 9).
//
// OCOLOS's first stage measures TopDown counters on the live process: a
// workload with high front-end-latency share and low retiring share will
// benefit from code layout optimization; a memory-bound one will not.
// This example measures every workload/input pair's TopDown breakdown on
// the original binary and prints the controller's go/no-go call.
//
// Run with: go run ./examples/topdown
package main

import (
	"fmt"
	"log"

	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/rtlsim"
	"repro/internal/workloads/sqldb"
	"repro/internal/workloads/wl"
)

func main() {
	workloads := []*wl.Workload{}
	if w, err := sqldb.Build(sqldb.Full()); err == nil {
		workloads = append(workloads, w)
	} else {
		log.Fatal(err)
	}
	if w, err := docdb.Build(docdb.Full()); err == nil {
		workloads = append(workloads, w)
	} else {
		log.Fatal(err)
	}
	if w, err := kvcache.Build(kvcache.Full()); err == nil {
		workloads = append(workloads, w)
	} else {
		log.Fatal(err)
	}
	if w, err := rtlsim.Build(rtlsim.Full()); err == nil {
		workloads = append(workloads, w)
	} else {
		log.Fatal(err)
	}

	fmt.Printf("%-9s %-17s %9s %9s %9s %9s   %s\n",
		"bench", "input", "retire%", "FE%", "badspec%", "BE%", "verdict")
	for _, w := range workloads {
		for _, input := range w.Inputs {
			d, err := w.NewDriver(input, 4)
			if err != nil {
				log.Fatal(err)
			}
			p, err := proc.Load(w.Binary, proc.Options{Threads: 4, Handler: d})
			if err != nil {
				log.Fatal(err)
			}
			p.RunFor(0.002)
			td := perf.MeasureTopDown(p, 0.003).TopDown()
			if err := p.Fault(); err != nil {
				log.Fatal(err)
			}
			verdict := "skip (not front-end bound)"
			if td.FrontEnd > 0.25 && td.Retiring < 0.5 {
				verdict = "OPTIMIZE"
			}
			fmt.Printf("%-9s %-17s %8.1f%% %8.1f%% %8.1f%% %8.1f%%   %s\n",
				w.Name, input, td.Retiring*100, td.FrontEnd*100,
				td.BadSpec*100, td.BackEnd*100, verdict)
		}
	}
}
