// Redirectall: the trampoline mode for security/debugging use cases.
//
// §IV-B of the paper: by default OCOLOS only minimizes time spent in C0 —
// stale code pointers may still occasionally run original code. "For
// security or debugging use-cases, however, it may be necessary to
// redirect all invocations of C0 functions to their C1 counterparts
// instead, e.g., via trampoline instructions at the start of C0
// functions." This example runs the same workload in both modes and
// samples where branches actually execute: default mode leaves a residue
// of C0 execution; trampoline mode drives coverage of the optimized code
// to ~100%, which is what an instrumentation or hardening pass deployed
// in C1 would require.
//
// Run with: go run ./examples/redirectall
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/proc"
	"repro/internal/workloads/sqldb"
)

func main() {
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"default (minimize C0 time)", core.Options{}},
		{"trampolines (redirect all)", core.Options{Trampolines: true}},
	} {
		w, err := sqldb.Build(sqldb.Full())
		if err != nil {
			log.Fatal(err)
		}
		d, err := w.NewDriver("read_only", 4)
		if err != nil {
			log.Fatal(err)
		}
		p, err := proc.Load(w.Binary, proc.Options{Threads: 4, Handler: d})
		if err != nil {
			log.Fatal(err)
		}
		ctl, err := core.New(p, w.Binary, mode.opts)
		if err != nil {
			log.Fatal(err)
		}
		p.RunFor(0.002)
		rr, err := ctl.OptimizeRound(0.004)
		if err != nil {
			log.Fatal(err)
		}
		rs := rr.Replace
		p.RunFor(0.002)

		// Sample where taken branches execute. The discriminator is the
		// stale-pointer residue: branches executing inside the *old C0
		// bodies of moved functions* (reached through function pointers,
		// which the invariant keeps aimed at C0). Default mode tolerates
		// that residue; trampolines bounce those entries to C1.
		raw := perf.Record(p, 0.003, perf.RecorderOptions{})
		if err := p.Fault(); err != nil {
			log.Fatal(err)
		}
		moved := map[string]bool{}
		for old := range ctl.CurrentBinary().AddrMap {
			if f := w.Binary.FuncAt(old); f != nil {
				moved[f.Name] = true
			}
		}
		var stale, total int
		byFunc := map[string]int{}
		for _, s := range raw.Samples {
			for _, r := range s.Records {
				total++
				// off > 0 excludes the trampoline's own bounce jump at the
				// entry; we want branches executed inside old bodies.
				if f, off, _ := w.Binary.Lookup(r.From); f != nil && moved[f.Name] && off > 0 {
					stale++
					byFunc[f.Name]++
				}
			}
		}
		fmt.Printf("%-28s stale-C0 execution %6.2f%%  (%d trampolines, pause %.2f ms)\n",
			mode.name, 100*float64(stale)/float64(total),
			rs.TrampolinesWritten, rs.PauseSeconds*1e3)
		// agg_reduce is only ever reached through a function pointer the
		// C0 invariant aims at the old code: trampolines bounce it to C1.
		// serve_loop never exits its dispatch loop, so its C0 instance can
		// only be retired by the continuous-mode PC rewrite, not by an
		// entry trampoline — same trade-off the paper describes.
		fmt.Printf("%-28s   of which agg_reduce %d, serve_loop %d\n",
			"", byFunc["agg_reduce"], byFunc["serve_loop"])
	}
}
