// Command bolt is the offline optimizer CLI: it builds a benchmark
// workload (or reads a serialized binary), collects an LBR profile by
// running the given input, optimizes, and writes the BOLTed binary —
// `llvm-bolt` for the simulated world.
//
// Usage:
//
//	bolt -workload sqldb -input read_only -o sqldb.bolt
//	bolt -in sqldb.bolt -workload sqldb -input insert -o sqldb.bolt2 -allow-rebolt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bolt"
	"repro/internal/experiments"
	"repro/internal/obj"
	"repro/internal/perf"
	"repro/internal/proc"
)

func main() {
	workload := flag.String("workload", "sqldb", "workload providing code and load generator")
	input := flag.String("input", "read_only", "input mix to profile")
	inFile := flag.String("in", "", "optimize this serialized binary instead of the workload's original")
	perfFile := flag.String("perf", "", "use a saved profile (from perf-record) instead of profiling inline")
	outFile := flag.String("o", "", "output path for the optimized binary")
	profileMS := flag.Float64("profile-ms", 5, "profiling duration (simulated ms)")
	funcOrder := flag.String("reorder-functions", "c3", "c3 | ph | none")
	noSplit := flag.Bool("no-split", false, "disable hot/cold splitting")
	noBlocks := flag.Bool("no-reorder-blocks", false, "disable basic-block reordering")
	allowRebolt := flag.Bool("allow-rebolt", false, "permit optimizing an already-bolted binary")
	flag.Parse()

	if *outFile == "" {
		fmt.Fprintln(os.Stderr, "bolt: -o is required")
		os.Exit(2)
	}
	if err := run(*workload, *input, *inFile, *perfFile, *outFile, *profileMS, *funcOrder, *noSplit, *noBlocks, *allowRebolt); err != nil {
		fmt.Fprintln(os.Stderr, "bolt:", err)
		os.Exit(1)
	}
}

func run(workload, input, inFile, perfFile, outFile string, profileMS float64, funcOrder string, noSplit, noBlocks, allowRebolt bool) error {
	w, err := experiments.Workload(workload, false)
	if err != nil {
		return err
	}
	bin := w.Binary
	if inFile != "" {
		bin, err = obj.ReadFile(inFile)
		if err != nil {
			return err
		}
	}

	var raw *perf.RawProfile
	if perfFile != "" {
		// Saved profile from perf-record.
		raw, err = perf.ReadFile(perfFile)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s: %d samples, %d branch records\n",
			perfFile, len(raw.Samples), raw.Branches())
	} else {
		// Profile the binary running the chosen input.
		d, err := w.NewDriver(input, w.Threads)
		if err != nil {
			return err
		}
		p, err := proc.Load(bin, proc.Options{Threads: w.Threads, Handler: d})
		if err != nil {
			return err
		}
		p.RunFor(0.002)
		raw = perf.Record(p, profileMS/1e3, perf.RecorderOptions{})
		if err := p.Fault(); err != nil {
			return err
		}
		fmt.Printf("profiled %s/%s: %d samples, %d branch records\n",
			bin.Name, input, len(raw.Samples), raw.Branches())
	}

	prof, err := bolt.ConvertProfile(raw, bin)
	if err != nil {
		return err
	}
	res, err := bolt.Optimize(bin, prof, bolt.Options{
		FuncOrder:       bolt.FuncOrderAlgo(funcOrder),
		NoSplit:         noSplit,
		NoReorderBlocks: noBlocks,
		AllowReBolt:     allowRebolt,
	})
	if err != nil {
		return err
	}
	fmt.Printf("optimized: %d functions moved, %d split, new text %d KiB\n",
		res.FuncsReordered, res.FuncsSplit, res.NewTextBytes/1024)
	if err := res.Binary.WriteFile(outFile); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outFile)
	return nil
}
