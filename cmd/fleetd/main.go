// Fleetd drives a mixed-workload service fleet through the OCOLOS
// lifecycle — the §V deployment story as a daemon-style batch run. It
// stands up replicas of the database, document-store, and cache
// workloads, scans them, optimizes the selected ones concurrently on
// the manager's worker pool (stop-the-world pauses staggered by the
// global semaphore), and dumps the per-service state report plus the
// full telemetry registry.
//
// Quick mode (the default) runs small-scale workloads with the gate
// skipped so every lifecycle path executes in a couple of seconds;
// -full runs evaluation-scale workloads under the real TopDown gate.
//
// With -serve ADDR the wave runs in the background while an HTTP
// control plane serves GET /metrics (Prometheus text), /services
// (JSON fleet snapshot), /trace?service=X (span tree; &format=jsonl
// for the event journal), /cache (layout-cache hit/miss stats),
// /profile (streaming-profile status; POST ingests external LBR
// batches), and /healthz on ADDR until SIGINT/SIGTERM or, once the
// wave completes, until shut down.
//
// With -drift each service gets a continuous GWP-style sampler feeding
// a bounded profile store, and after the initial wave fleetd keeps
// scanning Steady services for divergence between the live profile and
// the profile their layout was built from (-drift-divergence), driving
// re-optimization waves when a phase change lands (docs/profiling.md).
//
// The manager is sharded (-shards) so status reads never stall the
// wave, and BOLTed layouts are shared across identical replicas
// through the content-addressed layout cache (-no-cache to ablate);
// see docs/fleet.md.
//
// Run with: go run ./cmd/fleetd [-full] [-replicas N] [-rounds N] [-shards N] [-serve :8080]
//
// -record journals the wave's nondeterminism (wall-clock reads, backoff
// jitter, perf deadlines, fault decisions, per-service state-hash
// checkpoints); while recording, the wave is serialized (one worker, one
// pause). -replay re-executes a recorded wave from the journal alone —
// the fleet flags come from the journal's meta header — and requires a
// byte-identical re-recorded journal (docs/replay.md).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads/docdb"
	"repro/internal/workloads/kvcache"
	"repro/internal/workloads/sqldb"
	"repro/internal/workloads/wl"
)

// fleetMeta is the journal meta header: the flag set that rebuilds the
// recorded fleet bit-for-bit.
func fleetMeta(full bool, replicas, rounds, shards int, revertBelow float64, noCache, drift bool, driftDiv float64) []trace.Attr {
	return []trace.Attr{
		trace.String("kind", "fleetd"),
		trace.Bool("full", full),
		trace.Int("replicas", replicas),
		trace.Int("rounds", rounds),
		trace.Int("shards", shards),
		trace.Int("revert_below_bits", int(math.Float64bits(revertBelow))),
		trace.Bool("no_cache", noCache),
		trace.Bool("drift", drift),
		trace.Int("drift_divergence_bits", int(math.Float64bits(driftDiv))),
	}
}

func main() {
	var (
		full        = flag.Bool("full", false, "evaluation-scale workloads and the real TopDown gate")
		replicas    = flag.Int("replicas", 2, "replicas per workload/input pair")
		workers     = flag.Int("workers", 4, "concurrent lifecycle workers")
		maxPauses   = flag.Int("max-pauses", 1, "max simultaneous stop-the-world pauses")
		rounds      = flag.Int("rounds", 2, "max optimization rounds per service")
		shards      = flag.Int("shards", 4, "independent manager lock domains (services are hashed across them)")
		noCache     = flag.Bool("no-cache", false, "disable the content-addressed layout cache (every service runs its own BOLT)")
		revertBelow = flag.Float64("revert-below", 1.0, "revert to C0 below this speedup (0 disables)")
		serve       = flag.String("serve", "", "serve the HTTP control plane on this address (e.g. :8080) while the wave runs")
		drift       = flag.Bool("drift", false, "stream profiles continuously and re-optimize Steady services whose live profile drifts from the layout's build profile")
		driftDiv    = flag.Float64("drift-divergence", 0.35, "total-variation divergence that triggers a drift re-optimization (with -drift)")
		driftEvery  = flag.Duration("drift-every", 250*time.Millisecond, "host-time interval between drift scans in serve mode (with -drift -serve)")
		record      = flag.String("record", "", "write the wave's nondeterminism journal to FILE (JSONL)")
		replayPath  = flag.String("replay", "", "re-execute a recorded wave from FILE (fleet flags are ignored)")
	)
	flag.Parse()

	var sess *replay.Session
	var originalJournal []byte
	if *replayPath != "" {
		var err error
		originalJournal, err = os.ReadFile(*replayPath)
		if err != nil {
			log.Fatal(err)
		}
		events, err := replay.Load(bytes.NewReader(originalJournal))
		if err != nil {
			log.Fatal(err)
		}
		meta, err := replay.MetaOf(events)
		if err != nil {
			log.Fatal(err)
		}
		// The journal header is the configuration of record.
		fAny, _ := meta.Get("full")
		*full, _ = fAny.(bool)
		rp, _ := meta.Int("replicas")
		*replicas = int(rp)
		rd, _ := meta.Int("rounds")
		*rounds = int(rd)
		if sh, ok := meta.Int("shards"); ok {
			*shards = int(sh)
		}
		rb, ok := meta.Int("revert_below_bits")
		if !ok {
			log.Fatal("fleetd: journal meta has no revert_below_bits — not a fleetd recording")
		}
		*revertBelow = math.Float64frombits(uint64(rb))
		if nc, ok := meta.Get("no_cache"); ok {
			*noCache, _ = nc.(bool)
		}
		if d, ok := meta.Get("drift"); ok {
			*drift, _ = d.(bool)
		}
		if db, ok := meta.Int("drift_divergence_bits"); ok {
			*driftDiv = math.Float64frombits(uint64(db))
		}
		if sess, err = replay.NewReplayer(events); err != nil {
			log.Fatal(err)
		}
	} else if *record != "" {
		sess = replay.NewRecorder(0)
	}
	if err := sess.Meta(fleetMeta(*full, *replicas, *rounds, *shards, *revertBelow, *noCache, *drift, *driftDiv)...); err != nil {
		log.Fatal(err)
	}

	// Workload construction is the one shared-state step (binaries are
	// immutable afterwards), so it stays sequential.
	type spec struct {
		build func() (*wl.Workload, error)
		input string
	}
	specs := []spec{
		{func() (*wl.Workload, error) {
			if *full {
				return sqldb.Build(sqldb.Full())
			}
			return sqldb.Build(sqldb.Small())
		}, "read_only"},
		{func() (*wl.Workload, error) {
			if *full {
				return docdb.Build(docdb.Full())
			}
			return docdb.Build(docdb.Small())
		}, "read_update"},
		{func() (*wl.Workload, error) {
			if *full {
				return kvcache.Build(kvcache.Full())
			}
			return kvcache.Build(kvcache.Small())
		}, "set10_get90"},
	}

	metrics := telemetry.NewRegistry()
	tracer := trace.New(trace.Options{})
	cfg := fleet.Config{
		Workers:   *workers,
		Shards:    *shards,
		MaxPauses: *maxPauses,
		Robustness: fleet.RobustnessConfig{
			MaxRounds:   *rounds,
			RevertBelow: *revertBelow,
		},
		Cache:   fleet.CacheConfig{Disable: *noCache},
		Metrics: metrics,
		Tracer:  tracer,
		Replay:  sess, // an active session forces a serial wave
	}
	if *drift {
		cfg.Drift = fleet.DriftConfig{
			Enabled: true,
			Policy:  profile.ReoptPolicy{MinDivergence: *driftDiv},
		}
	}
	if !*full {
		// Small-scale services: sub-millisecond windows, gate skipped so
		// every service exercises the lifecycle, and the (comparatively
		// huge) pause cost kept off the measured timeline.
		cfg.SkipGate = true
		cfg.Timing = fleet.TimingConfig{ProfileDur: 0.0008, Warm: 0.0003, Window: 0.0004}
	}
	m, err := fleet.NewManager(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, sp := range specs {
		w, err := sp.build()
		if err != nil {
			log.Fatal(err)
		}
		threads := 2
		if *full {
			threads = 4
		}
		for i := 0; i < *replicas; i++ {
			plan := fleet.ServicePlan{
				Name:     fmt.Sprintf("%s/%s#%d", w.Name, sp.input, i),
				Workload: w,
				Input:    sp.input,
				Threads:  threads,
			}
			if !*full {
				plan.Core = core.Options{NoChargePause: true}
			}
			svc, err := m.AddService(plan)
			if err != nil {
				log.Fatal(err)
			}
			svc.Proc.RunFor(m.Config().Timing.Warm) // services have been up for a while
		}
	}

	fmt.Printf("fleetd: %d services, %d workers, %d shard(s), %d max pause(s), %d round(s) max\n\n",
		len(m.Services()), m.Config().Workers, m.Config().Shards, m.Config().MaxPauses, m.Config().Robustness.MaxRounds)

	var srv *http.Server
	var served <-chan error
	sigs := make(chan os.Signal, 1)
	if *serve != "" {
		srv, served = serveControlPlane(*serve, m, metrics, tracer)
		// Catch shutdown signals from here on: a SIGTERM during the wave
		// is held until the report is out, then honored cleanly.
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	}

	t0 := time.Now()
	rep, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fleet state report:")
	rep.Write(os.Stdout)
	fmt.Printf("\nwave completed in %.2fs host time, peak concurrent pauses %d\n",
		time.Since(t0).Seconds(), m.PeakPauses())
	if stats, ok := m.CacheStats(); ok {
		fmt.Printf("layout cache: %d hit(s), %d miss(es), %d coalesced, %d entries (hit rate %.2f)\n",
			stats.Hits, stats.Misses, stats.Coalesced, stats.Entries, stats.HitRate())
	} else {
		fmt.Println("layout cache: disabled")
	}

	if err := finishSession(sess, *record, *replayPath, originalJournal); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntelemetry:")
	metrics.WriteReport(os.Stdout)

	if srv != nil {
		if *drift && !sess.Active() {
			// Drift watch: keep scanning the Steady fleet against incoming
			// POST /profile pushes and re-optimize whatever drifted. Not run
			// under record/replay — external pushes arrive over HTTP, which
			// a journal replay cannot re-supply.
			fmt.Printf("\nwave done; drift watch scanning every %v (SIGINT/SIGTERM to stop)\n", *driftEvery)
			watchDrift(m, *driftEvery, sigs, served)
		} else {
			fmt.Println("\nwave done; control plane still serving (SIGINT/SIGTERM to stop)")
			select {
			case sig := <-sigs:
				fmt.Printf("fleetd: %v, shutting down\n", sig)
			case err := <-served:
				log.Fatalf("fleetd: control plane: %v", err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("fleetd: shutdown: %v", err)
		}
	}
}

// watchDrift is fleetd's steady-state loop: every tick it runs a drift
// scan and, when any service's verdict fired, drives a re-optimization
// wave over the triggered set. Returns on SIGINT/SIGTERM.
func watchDrift(m *fleet.Manager, every time.Duration, sigs <-chan os.Signal, served <-chan error) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case sig := <-sigs:
			fmt.Printf("fleetd: %v, shutting down\n", sig)
			return
		case err := <-served:
			log.Fatalf("fleetd: control plane: %v", err)
		case <-tick.C:
			scan := m.Scan(fleet.ScanOptions{Drift: true})
			triggered := 0
			for _, r := range scan {
				if r.Optimize {
					triggered++
				}
			}
			if triggered == 0 {
				continue
			}
			fmt.Printf("fleetd: drift on %d service(s) (top score %.3f); re-optimizing\n",
				triggered, scan[0].DriftScore)
			m.Optimize(scan, fleet.WaveOptions{})
		}
	}
}

// finishSession validates the wave's session and either writes the
// recording or verifies the replay re-recorded byte-identically.
func finishSession(sess *replay.Session, recordPath, replayPath string, original []byte) error {
	if !sess.Active() {
		return nil
	}
	if err := sess.Finish(); err != nil {
		return err
	}
	if recordPath != "" {
		f, err := os.Create(recordPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sess.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Printf("\nrecorded %d events to %s\n", len(sess.Events()), recordPath)
		return nil
	}
	var rerecorded bytes.Buffer
	if err := sess.WriteJSONL(&rerecorded); err != nil {
		return err
	}
	if !bytes.Equal(original, rerecorded.Bytes()) {
		return fmt.Errorf("replay verified all checkpoints but re-recorded journal is not byte-identical (%d vs %d bytes)",
			len(original), rerecorded.Len())
	}
	fmt.Printf("\nreplay OK: %d events re-executed bit-identically from %s\n", sess.Journal().Len(), replayPath)
	return nil
}

// serveControlPlane binds addr (which may be :0 for an ephemeral port),
// prints the resolved address for scrapers to parse, and serves the
// fleet control plane in the background. The returned channel delivers
// a serve error, if any.
func serveControlPlane(addr string, m *fleet.Manager, metrics *telemetry.Registry, tracer *trace.Tracer) (*http.Server, <-chan error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("fleetd: listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: fleet.NewControlPlane(m, metrics, tracer).Handler()}
	fmt.Printf("fleetd: serving control plane on http://%s\n", ln.Addr())
	served := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			served <- err
		}
	}()
	return srv, served
}
