// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] all
//	experiments [-quick] fig5 tab1 ...
//
// Each experiment prints paper-style rows; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shorter measurement windows and fewer threads")
	csvDir := flag.String("csv", "", "also write plot-ready CSVs (fig5, fig9) into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-quick] all | %s\n",
			strings.Join(experiments.Names(), " | "))
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var names []string
	if len(args) == 1 && args[0] == "all" {
		names = experiments.Names()
	} else {
		names = args
	}

	cfg := experiments.Config{Quick: *quick, Out: os.Stdout, CSVDir: *csvDir}
	for _, name := range names {
		run, ok := experiments.Registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; have: %s\n",
				name, strings.Join(experiments.Names(), " "))
			os.Exit(2)
		}
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		if err := run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s done in %.1fs ===\n\n", name, time.Since(start).Seconds())
	}
}
