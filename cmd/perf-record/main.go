// Command perf-record is the `perf record -b` analog: it runs a benchmark
// workload under LBR sampling and writes the raw profile to disk, for
// later consumption by `bolt -perf` — the same record-then-optimize
// pipeline the paper's offline baselines use.
//
// Usage:
//
//	perf-record -workload sqldb -input read_only -o read_only.perf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/proc"
)

func main() {
	workload := flag.String("workload", "sqldb", "sqldb | docdb | kvcache | rtlsim | compilersim")
	input := flag.String("input", "read_only", "input mix to drive")
	threads := flag.Int("threads", 0, "worker threads (0 = workload default)")
	durMS := flag.Float64("duration-ms", 5, "recording duration (simulated ms)")
	periodK := flag.Float64("period", 50_000, "sampling period in cycles")
	out := flag.String("o", "perf.data", "output profile path")
	flag.Parse()

	if err := run(*workload, *input, *threads, *durMS, *periodK, *out); err != nil {
		fmt.Fprintln(os.Stderr, "perf-record:", err)
		os.Exit(1)
	}
}

func run(workload, input string, threads int, durMS, period float64, out string) error {
	w, err := experiments.Workload(workload, false)
	if err != nil {
		return err
	}
	if threads <= 0 {
		threads = w.Threads
	}
	d, err := w.NewDriver(input, threads)
	if err != nil {
		return err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return err
	}
	p.RunFor(0.002) // warm up before attaching, like profiling a live server
	raw := perf.Record(p, durMS/1e3, perf.RecorderOptions{PeriodCycles: period})
	if err := p.Fault(); err != nil {
		return err
	}
	if err := raw.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("recorded %d samples (%d branch records) over %.2f simulated ms -> %s\n",
		len(raw.Samples), raw.Branches(), raw.Seconds*1e3, out)
	return nil
}
