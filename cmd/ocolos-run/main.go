// Command ocolos-run launches a benchmark workload in the simulated
// machine and optimizes it online with OCOLOS, printing throughput before
// and after each replacement round — the end-to-end tool the paper's
// Figure 4a describes.
//
// Usage:
//
//	ocolos-run -workload sqldb -input read_only [-threads 8]
//	           [-profile-ms 5] [-rounds 1] [-revert]
//	           [-record out.jsonl | -replay journal.jsonl]
//
// With -rounds > 1, continuous optimization (§IV-C) re-profiles the
// optimized process and replaces C_i with C_{i+1}, garbage-collecting the
// dead version. -revert restores C0 at the end (§VI-C4).
//
// -record journals every nondeterministic decision of the session
// (perf sampling deadlines, scheduler policy, fault decisions) plus
// state-hash checkpoints at each round boundary. -replay re-executes a
// recorded session from the journal alone — the workload flags are read
// from the journal's own meta header — verifies every checkpoint, and
// requires the re-recorded journal to be byte-identical (docs/replay.md).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/proc"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/workloads/wl"
)

func main() {
	workload := flag.String("workload", "sqldb", "sqldb | docdb | kvcache | rtlsim | loopsim")
	input := flag.String("input", "read_only", "workload input mix")
	threads := flag.Int("threads", 0, "worker threads (0 = workload default)")
	profileMS := flag.Float64("profile-ms", 5, "LBR profiling duration per round (simulated ms)")
	rounds := flag.Int("rounds", 1, "optimization rounds (>1 = continuous optimization)")
	revert := flag.Bool("revert", false, "revert to C0 after the last round")
	tramp := flag.Bool("trampolines", false, "redirect ALL invocations via C0 entry trampolines (§IV-B)")
	parallel := flag.Bool("parallel-patch", false, "model parallelized pointer patching (§IV-D)")
	record := flag.String("record", "", "write the session's nondeterminism journal to FILE (JSONL)")
	rp := flag.String("replay", "", "re-execute a recorded session from FILE (other workload flags are ignored)")
	flag.Parse()

	var err error
	if *rp != "" {
		err = replaySession(*rp)
	} else {
		cfg := runConfig{workload: *workload, input: *input, threads: *threads,
			profileMS: *profileMS, rounds: *rounds, revert: *revert, tramp: *tramp, parallel: *parallel}
		err = run(cfg, *record)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocolos-run:", err)
		os.Exit(1)
	}
}

// runConfig is the complete identity of one session: what -record
// stores in the journal's meta header and -replay reads back.
type runConfig struct {
	workload, input string
	threads         int
	profileMS       float64
	rounds          int
	revert          bool
	tramp           bool
	parallel        bool
}

func (c runConfig) metaAttrs() []trace.Attr {
	return []trace.Attr{
		trace.String("kind", "ocolos-run"),
		trace.String("workload", c.workload),
		trace.String("input", c.input),
		trace.Int("threads", c.threads),
		trace.Int("profile_ms_bits", int(math.Float64bits(c.profileMS))),
		trace.Int("rounds", c.rounds),
		trace.Bool("revert", c.revert),
		trace.Bool("trampolines", c.tramp),
		trace.Bool("parallel_patch", c.parallel),
	}
}

func configFromMeta(meta trace.Attrs) (runConfig, error) {
	kindAny, _ := meta.Get("kind")
	if kind, _ := kindAny.(string); kind != "ocolos-run" {
		return runConfig{}, fmt.Errorf("journal was recorded by %q, not ocolos-run", kindAny)
	}
	var c runConfig
	wAny, _ := meta.Get("workload")
	c.workload, _ = wAny.(string)
	iAny, _ := meta.Get("input")
	c.input, _ = iAny.(string)
	th, _ := meta.Int("threads")
	c.threads = int(th)
	bits, ok := meta.Int("profile_ms_bits")
	if !ok {
		return runConfig{}, fmt.Errorf("journal meta has no profile_ms_bits")
	}
	c.profileMS = math.Float64frombits(uint64(bits))
	r, _ := meta.Int("rounds")
	c.rounds = int(r)
	rev, _ := meta.Get("revert")
	c.revert, _ = rev.(bool)
	tr, _ := meta.Get("trampolines")
	c.tramp, _ = tr.(bool)
	pp, _ := meta.Get("parallel_patch")
	c.parallel, _ = pp.(bool)
	return c, nil
}

// run executes one session, optionally recording it to recordPath.
func run(cfg runConfig, recordPath string) error {
	var sess *replay.Session
	if recordPath != "" {
		sess = replay.NewRecorder(0)
	}
	if err := drive(cfg, sess); err != nil {
		return err
	}
	if sess != nil {
		if err := sess.Finish(); err != nil {
			return err
		}
		f, err := os.Create(recordPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sess.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Printf("recorded %d events to %s\n", len(sess.Events()), recordPath)
	}
	return nil
}

// replaySession re-executes a recorded session from its journal alone
// and verifies it was bit-identical: every checkpoint hash matches, all
// recorded decisions are consumed, and the re-recorded journal equals
// the input byte for byte.
func replaySession(path string) error {
	original, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := replay.Load(bytes.NewReader(original))
	if err != nil {
		return err
	}
	meta, err := replay.MetaOf(events)
	if err != nil {
		return err
	}
	cfg, err := configFromMeta(meta)
	if err != nil {
		return err
	}
	sess, err := replay.NewReplayer(events)
	if err != nil {
		return err
	}
	if err := drive(cfg, sess); err != nil {
		return err
	}
	if err := sess.Finish(); err != nil {
		return err
	}
	var rerecorded bytes.Buffer
	if err := sess.WriteJSONL(&rerecorded); err != nil {
		return err
	}
	if !bytes.Equal(original, rerecorded.Bytes()) {
		return fmt.Errorf("replay verified all checkpoints but re-recorded journal is not byte-identical (%d vs %d bytes)",
			len(original), rerecorded.Len())
	}
	fmt.Printf("replay OK: %d events re-executed bit-identically from %s\n", len(events), path)
	return nil
}

// checkpoint marks a round boundary: the controller state hash plus the
// measured throughput (bit-exact) are identity, so a replay that drifts
// in either fails right here.
func checkpoint(sess *replay.Session, name string, ctl *core.Controller, round int, tput float64) error {
	return sess.Checkpoint(name, ctl.StateHash(),
		trace.Int("round", round),
		trace.Int("version", ctl.Version()),
		trace.Int("throughput_bits", int(math.Float64bits(tput))))
}

func drive(cfg runConfig, sess *replay.Session) error {
	w, err := experiments.Workload(cfg.workload, false)
	if err != nil {
		return err
	}
	if cfg.threads <= 0 {
		cfg.threads = w.Threads
	}
	if err := sess.Meta(cfg.metaAttrs()...); err != nil {
		return err
	}
	d, err := w.NewDriver(cfg.input, cfg.threads)
	if err != nil {
		return err
	}
	p, err := proc.Load(w.Binary, proc.Options{
		Threads:      cfg.threads,
		Handler:      d,
		SchedQuantum: sess.SchedQuantum(nil),
	})
	if err != nil {
		return err
	}
	opts := core.Options{Trampolines: cfg.tramp, ParallelPatch: cfg.parallel, Replay: sess}
	if cfg.rounds > 1 {
		opts.Bolt = bolt.Options{AllowReBolt: true}
	}
	ctl, err := core.New(p, w.Binary, opts)
	if err != nil {
		return err
	}

	fmt.Printf("%s %s: %d threads, %s\n", cfg.workload, cfg.input, cfg.threads, w.Binary)
	p.RunFor(0.003)
	base := wl.Measure(p, d, 0.004)
	fmt.Printf("original steady state: %.0f req/s\n", base)
	if err := checkpoint(sess, "baseline", ctl, 0, base); err != nil {
		return err
	}

	for r := 1; r <= cfg.rounds; r++ {
		rr, err := ctl.OptimizeRound(cfg.profileMS / 1e3)
		if err != nil {
			return err
		}
		rs, bs := rr.Replace, rr.Build
		p.RunFor(0.003)
		t := wl.Measure(p, d, 0.004)
		fmt.Printf("round %d: C%d live — %.0f req/s (%.2fx)\n", r, ctl.Version(), t, t/base)
		fmt.Printf("  perf2bolt %.1f ms host, bolt %.1f ms host, pause %.2f ms simulated\n",
			bs.Perf2BoltSeconds*1e3, bs.BoltSeconds*1e3, rs.PauseSeconds*1e3)
		fmt.Printf("  injected %d KiB, %d call sites + %d vtable slots patched, %d funcs on stack, GC freed %d KiB\n",
			rs.BytesInjected/1024, rs.CallSitesPatched, rs.VTableSlotsPatched,
			rs.FuncsOnStack, rs.BytesFreed/1024)
		if rs.OSRFramesMapped > 0 || rs.OSRFallbacks > 0 {
			fmt.Printf("  OSR: %d frames transferred in place, %d fell back to copies\n",
				rs.OSRFramesMapped, rs.OSRFallbacks)
		}
		if err := checkpoint(sess, "round", ctl, r, t); err != nil {
			return err
		}
	}

	if cfg.revert {
		if _, err := ctl.Revert(); err != nil {
			return err
		}
		p.RunFor(0.003)
		t := wl.Measure(p, d, 0.004)
		fmt.Printf("reverted to C0: %.0f req/s (%.2fx)\n", t, t/base)
		if err := checkpoint(sess, "revert", ctl, cfg.rounds, t); err != nil {
			return err
		}
	}
	return p.Fault()
}
