// Command ocolos-run launches a benchmark workload in the simulated
// machine and optimizes it online with OCOLOS, printing throughput before
// and after each replacement round — the end-to-end tool the paper's
// Figure 4a describes.
//
// Usage:
//
//	ocolos-run -workload sqldb -input read_only [-threads 8]
//	           [-profile-ms 5] [-rounds 1] [-revert]
//
// With -rounds > 1, continuous optimization (§IV-C) re-profiles the
// optimized process and replaces C_i with C_{i+1}, garbage-collecting the
// dead version. -revert restores C0 at the end (§VI-C4).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bolt"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/proc"
	"repro/internal/workloads/wl"
)

func main() {
	workload := flag.String("workload", "sqldb", "sqldb | docdb | kvcache | rtlsim")
	input := flag.String("input", "read_only", "workload input mix")
	threads := flag.Int("threads", 0, "worker threads (0 = workload default)")
	profileMS := flag.Float64("profile-ms", 5, "LBR profiling duration per round (simulated ms)")
	rounds := flag.Int("rounds", 1, "optimization rounds (>1 = continuous optimization)")
	revert := flag.Bool("revert", false, "revert to C0 after the last round")
	tramp := flag.Bool("trampolines", false, "redirect ALL invocations via C0 entry trampolines (§IV-B)")
	parallel := flag.Bool("parallel-patch", false, "model parallelized pointer patching (§IV-D)")
	flag.Parse()

	if err := run(*workload, *input, *threads, *profileMS, *rounds, *revert, *tramp, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "ocolos-run:", err)
		os.Exit(1)
	}
}

func run(workload, input string, threads int, profileMS float64, rounds int, revert, tramp, parallel bool) error {
	w, err := experiments.Workload(workload, false)
	if err != nil {
		return err
	}
	if threads <= 0 {
		threads = w.Threads
	}
	d, err := w.NewDriver(input, threads)
	if err != nil {
		return err
	}
	p, err := proc.Load(w.Binary, proc.Options{Threads: threads, Handler: d})
	if err != nil {
		return err
	}
	opts := core.Options{Trampolines: tramp, ParallelPatch: parallel}
	if rounds > 1 {
		opts.Bolt = bolt.Options{AllowReBolt: true}
	}
	ctl, err := core.New(p, w.Binary, opts)
	if err != nil {
		return err
	}

	fmt.Printf("%s %s: %d threads, %s\n", workload, input, threads, w.Binary)
	p.RunFor(0.003)
	base := wl.Measure(p, d, 0.004)
	fmt.Printf("original steady state: %.0f req/s\n", base)

	for r := 1; r <= rounds; r++ {
		rr, err := ctl.OptimizeRound(profileMS / 1e3)
		if err != nil {
			return err
		}
		rs, bs := rr.Replace, rr.Build
		p.RunFor(0.003)
		t := wl.Measure(p, d, 0.004)
		fmt.Printf("round %d: C%d live — %.0f req/s (%.2fx)\n", r, ctl.Version(), t, t/base)
		fmt.Printf("  perf2bolt %.1f ms host, bolt %.1f ms host, pause %.2f ms simulated\n",
			bs.Perf2BoltSeconds*1e3, bs.BoltSeconds*1e3, rs.PauseSeconds*1e3)
		fmt.Printf("  injected %d KiB, %d call sites + %d vtable slots patched, %d funcs on stack, GC freed %d KiB\n",
			rs.BytesInjected/1024, rs.CallSitesPatched, rs.VTableSlotsPatched,
			rs.FuncsOnStack, rs.BytesFreed/1024)
	}

	if revert {
		if _, err := ctl.Revert(); err != nil {
			return err
		}
		p.RunFor(0.003)
		t := wl.Measure(p, d, 0.004)
		fmt.Printf("reverted to C0: %.0f req/s (%.2fx)\n", t, t/base)
	}
	return p.Fault()
}
